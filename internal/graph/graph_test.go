package graph

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/holisticim/holisticim/internal/rng"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdgeP(0, 1, 0.5, 0.3)
	b.AddEdgeP(0, 2, 0.25, 0.9)
	b.AddEdgeP(2, 3, 1.0, 0.0)
	g := b.Build()
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 0 || g.OutDegree(2) != 1 {
		t.Fatalf("out degrees wrong: %d %d %d", g.OutDegree(0), g.OutDegree(1), g.OutDegree(2))
	}
	if g.InDegree(3) != 1 || g.InDegree(1) != 1 || g.InDegree(0) != 0 {
		t.Fatalf("in degrees wrong")
	}
	if p, ok := g.EdgeProb(0, 2); !ok || p != 0.25 {
		t.Fatalf("EdgeProb(0,2) = %v, %v", p, ok)
	}
	if phi, ok := g.EdgePhi(0, 1); !ok || phi != 0.3 {
		t.Fatalf("EdgePhi(0,1) = %v, %v", phi, ok)
	}
	if g.HasEdge(1, 0) {
		t.Fatal("phantom edge (1,0)")
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdgeP(0, 1, 0.9, 0.1)
	b.AddEdgeP(0, 1, 0.2, 0.2) // duplicate — first wins
	b.AddEdge(1, 1)            // self loop — dropped
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if p, _ := g.EdgeProb(0, 1); p != 0.9 {
		t.Fatalf("dedupe kept wrong edge, p=%v", p)
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestBuilderRejectsBadEdgeParams(t *testing.T) {
	cases := map[string]func(*Builder){
		"p-negative":   func(b *Builder) { b.AddEdgeFull(0, 1, -0.1, 0, 0) },
		"p-above-one":  func(b *Builder) { b.AddEdgeFull(0, 1, 1.5, 0, 0) },
		"p-nan":        func(b *Builder) { b.AddEdgeFull(0, 1, math.NaN(), 0, 0) },
		"phi-negative": func(b *Builder) { b.AddEdgeFull(0, 1, 0, -0.1, 0) },
		"phi-above":    func(b *Builder) { b.AddEdgeFull(0, 1, 0, 2, 0) },
		"phi-nan":      func(b *Builder) { b.AddEdgeFull(0, 1, 0, math.NaN(), 0) },
		"w-negative":   func(b *Builder) { b.AddEdgeFull(0, 1, 0, 0, -1) },
		"w-nan":        func(b *Builder) { b.AddEdgeFull(0, 1, 0, 0, math.NaN()) },
		"w-inf":        func(b *Builder) { b.AddEdgeFull(0, 1, 0, 0, math.Inf(1)) },
		"u-negative":   func(b *Builder) { b.AddEdgeFull(-1, 1, 0, 0, 0) },
		"v-range":      func(b *Builder) { b.AddEdgeFull(0, 2, 0, 0, 0) },
	}
	for name, add := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", name)
				}
			}()
			add(NewBuilder(2))
		})
	}
	// Boundary values pass; self-loops validate, then drop silently.
	b := NewBuilder(2)
	b.AddEdgeFull(0, 1, 1, 1, 0)
	b.AddEdgeFull(1, 0, 0, 0, 2.5)
	b.AddEdgeFull(1, 1, 0.5, 0.5, 0.5)
	if g := b.Build(); g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (self-loop dropped)", g.NumEdges())
	}
}

func TestInOutConsistency(t *testing.T) {
	r := rng.New(1)
	g := ErdosRenyi(200, 1500, r)
	// Every out-edge must appear exactly once as an in-edge with matching
	// parameter index.
	var outSum, inSum int64
	for u := NodeID(0); u < g.NumNodes(); u++ {
		outSum += int64(g.OutDegree(u))
		inSum += int64(g.InDegree(u))
	}
	if outSum != g.NumEdges() || inSum != g.NumEdges() {
		t.Fatalf("degree sums %d/%d != m %d", outSum, inSum, g.NumEdges())
	}
	for v := NodeID(0); v < g.NumNodes(); v++ {
		froms := g.InNeighbors(v)
		idxs := g.InEdgeIndices(v)
		for i, u := range froms {
			e := idxs[i]
			if g.outTo[e] != v {
				t.Fatalf("in-edge index mismatch: edge %d points to %d not %d", e, g.outTo[e], v)
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("in-edge (%d,%d) not found in out view", u, v)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(2)
	g := ErdosRenyi(100, 500, r)
	g.SetUniformProb(0.1)
	g.SetUniformPhi(0.7)
	tt := g.Transpose().Transpose()
	if tt.NumNodes() != g.NumNodes() || tt.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose^2 changed size")
	}
	for u := NodeID(0); u < g.NumNodes(); u++ {
		a, b := g.OutNeighbors(u), tt.OutNeighbors(u)
		if len(a) != len(b) {
			t.Fatalf("node %d degree changed", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency changed", u)
			}
		}
	}
	if p, _ := tt.EdgeProb(g.OutNeighbors(0)[0], 0); false && p != 0.1 {
		t.Fatal("unused")
	}
}

func TestTransposeMovesParams(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdgeP(0, 1, 0.42, 0.24)
	g := b.Build()
	tr := g.Transpose()
	if p, ok := tr.EdgeProb(1, 0); !ok || p != 0.42 {
		t.Fatalf("transpose lost p: %v %v", p, ok)
	}
	if phi, ok := tr.EdgePhi(1, 0); !ok || phi != 0.24 {
		t.Fatalf("transpose lost phi: %v %v", phi, ok)
	}
}

func TestWeightedCascadeAssignment(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 3)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	b.AddEdge(0, 1)
	g := b.Build()
	g.SetWeightedCascadeProb()
	if p, _ := g.EdgeProb(0, 3); math.Abs(p-1.0/3) > 1e-12 {
		t.Fatalf("WC p(0,3)=%v want 1/3", p)
	}
	if p, _ := g.EdgeProb(0, 1); p != 1.0 {
		t.Fatalf("WC p(0,1)=%v want 1", p)
	}
}

func TestLTWeightsSumToOne(t *testing.T) {
	r := rng.New(3)
	g := ErdosRenyi(150, 900, r)
	g.SetDefaultLTWeights()
	for v := NodeID(0); v < g.NumNodes(); v++ {
		if g.InDegree(v) == 0 {
			continue
		}
		sum := 0.0
		for _, e := range g.InEdgeIndices(v) {
			sum += g.WeightAt(e)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("LT weights of node %d sum to %v", v, sum)
		}
	}
}

func TestTrivalencyAssignment(t *testing.T) {
	g := ErdosRenyi(300, 3000, rng.New(41))
	g.SetTrivalencyProb(nil, 7)
	counts := map[float64]int{}
	for u := NodeID(0); u < g.NumNodes(); u++ {
		for _, p := range g.OutProbs(u) {
			counts[p]++
		}
	}
	for _, want := range []float64{0.1, 0.01, 0.001} {
		frac := float64(counts[want]) / float64(g.NumEdges())
		if frac < 0.25 || frac > 0.42 {
			t.Fatalf("trivalency value %v frequency %v, want ≈1/3", want, frac)
		}
	}
	// Deterministic given the seed.
	g2 := ErdosRenyi(300, 3000, rng.New(41))
	g2.SetTrivalencyProb(nil, 7)
	for u := NodeID(0); u < g.NumNodes(); u++ {
		a, b := g.OutProbs(u), g2.OutProbs(u)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("trivalency not deterministic")
			}
		}
	}
}

func TestTrivalencyRejectsBadValues(t *testing.T) {
	g := Path(3, 0.5, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.SetTrivalencyProb([]float64{1.5}, 1)
}

func TestOpinionValidation(t *testing.T) {
	g := Path(3, 0.5, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for opinion out of range")
		}
	}()
	g.SetOpinion(0, 1.5)
}

func TestCloneIndependence(t *testing.T) {
	g := Path(5, 0.5, 0.5)
	c := g.Clone()
	c.SetUniformProb(0.9)
	c.SetOpinion(0, -1)
	if p, _ := g.EdgeProb(0, 1); p != 0.5 {
		t.Fatal("clone mutated original probs")
	}
	if g.Opinion(0) != 0 {
		t.Fatal("clone mutated original opinions")
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdgeP(0, 1, 0.1, 0.2)
	b.AddEdgeP(1, 2, 0.3, 0.4)
	b.AddEdgeP(2, 3, 0.5, 0.6)
	b.AddEdgeP(3, 4, 0.7, 0.8)
	g := b.Build()
	g.SetOpinion(1, 0.5)
	g.SetOpinion(2, -0.5)
	sub, remap := g.InducedSubgraph([]NodeID{1, 2, 3})
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph size %d/%d", sub.NumNodes(), sub.NumEdges())
	}
	if remap[0] != -1 || remap[4] != -1 {
		t.Fatal("excluded nodes should map to -1")
	}
	n1, n2 := remap[1], remap[2]
	if p, ok := sub.EdgeProb(n1, n2); !ok || p != 0.3 {
		t.Fatalf("subgraph edge prob %v %v", p, ok)
	}
	if sub.Opinion(n1) != 0.5 || sub.Opinion(n2) != -0.5 {
		t.Fatal("subgraph opinions not carried")
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(3, [][2]NodeID{{0, 1}, {1, 2}})
	if g.NumEdges() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("FromEdges wrong")
	}
}

func TestCSRInvariantsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.Split(seed, 0)
		n := int32(2 + r.Intn(60))
		m := int64(r.Intn(4 * int(n)))
		g := ErdosRenyi(n, m+1, r)
		// outStart monotone, covers all edges
		if g.outStart[0] != 0 || g.outStart[n] != g.NumEdges() {
			return false
		}
		for i := int32(0); i < n; i++ {
			if g.outStart[i] > g.outStart[i+1] {
				return false
			}
		}
		// neighbor lists sorted, no self loops, no duplicates
		for u := NodeID(0); u < n; u++ {
			nbrs := g.OutNeighbors(u)
			for i, v := range nbrs {
				if v == u {
					return false
				}
				if i > 0 && nbrs[i-1] >= v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryFootprintPositive(t *testing.T) {
	g := Path(10, 0.1, 0.5)
	if g.MemoryFootprint() <= 0 {
		t.Fatal("footprint should be positive")
	}
	big := Path(1000, 0.1, 0.5)
	if big.MemoryFootprint() <= g.MemoryFootprint() {
		t.Fatal("bigger graph should have bigger footprint")
	}
}

func TestExampleFigure1Params(t *testing.T) {
	g := ExampleFigure1()
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("figure-1 graph size %d/%d", g.NumNodes(), g.NumEdges())
	}
	if p, _ := g.EdgeProb(2, 3); p != 0.9 { // C->D
		t.Fatalf("p(C,D)=%v", p)
	}
	if phi, _ := g.EdgePhi(0, 3); phi != 0.9 { // A->D
		t.Fatalf("phi(A,D)=%v", phi)
	}
	if g.Opinion(3) != -0.3 {
		t.Fatalf("o(D)=%v", g.Opinion(3))
	}
}

func TestMeanEdgeProb(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdgeP(0, 1, 0.2, 0)
	b.AddEdgeP(1, 2, 0.4, 0)
	g := b.Build()
	if got := MeanEdgeProb(g); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("MeanEdgeProb = %v, want 0.3", got)
	}
	if got := MeanEdgeProb(NewBuilder(2).Build()); got != 0 {
		t.Fatalf("edgeless MeanEdgeProb = %v, want 0", got)
	}
}
