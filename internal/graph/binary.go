package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary graph format: a compact little-endian serialization for fast
// loading of large graphs (the text edge-list parses at ~10-20 MB/s; the
// binary format is I/O bound). Layout:
//
//	magic "HIMG" | version u32 | n u32 | m u64
//	outStart  (n+1) × u64
//	outTo     m × u32
//	outProb   m × f64
//	outPhi    m × f64
//	outWt     m × f64
//	opinion   n × f64
//
// The in-adjacency is rebuilt on load (cheaper than storing it).
const (
	binaryMagic   = "HIMG"
	binaryVersion = 1
)

// WriteBinary serializes g in the binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []interface{}{uint32(binaryVersion), uint32(g.n), uint64(len(g.outTo))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, arr := range []interface{}{g.outStart, g.outTo, g.outProb, g.outPhi, g.outWt, g.opinion} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary, validating the
// header and structural invariants before accepting the data.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version, n uint32
	var m uint64
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("graph: binary version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: node count %d overflows int32", n)
	}
	g := &Graph{n: int32(n)}
	g.outStart = make([]int64, n+1)
	g.outTo = make([]NodeID, m)
	g.outProb = make([]float64, m)
	g.outPhi = make([]float64, m)
	g.outWt = make([]float64, m)
	g.opinion = make([]float64, n)
	for _, arr := range []interface{}{g.outStart, g.outTo, g.outProb, g.outPhi, g.outWt, g.opinion} {
		if err := binary.Read(br, binary.LittleEndian, arr); err != nil {
			return nil, fmt.Errorf("graph: binary payload: %w", err)
		}
	}
	// Validate structure before building the in-adjacency.
	if g.outStart[0] != 0 || g.outStart[n] != int64(m) {
		return nil, fmt.Errorf("graph: corrupt CSR offsets")
	}
	for i := uint32(0); i < n; i++ {
		if g.outStart[i] > g.outStart[i+1] {
			return nil, fmt.Errorf("graph: non-monotone CSR offsets at %d", i)
		}
	}
	for _, v := range g.outTo {
		if v < 0 || v >= g.n {
			return nil, fmt.Errorf("graph: edge target %d out of range", v)
		}
	}
	for i, p := range g.outProb {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("graph: probability %v at edge %d out of range", p, i)
		}
	}
	for i, o := range g.opinion {
		if o < -1 || o > 1 || math.IsNaN(o) {
			return nil, fmt.Errorf("graph: opinion %v at node %d out of range", o, i)
		}
	}
	g.buildInAdjacency()
	return g, nil
}

// buildInAdjacency reconstructs the in-edge view from the out-edge CSR.
func (g *Graph) buildInAdjacency() {
	n := g.n
	m := int64(len(g.outTo))
	g.inStart = make([]int64, n+1)
	g.inFrom = make([]NodeID, m)
	g.inEdge = make([]int64, m)
	for _, v := range g.outTo {
		g.inStart[v+1]++
	}
	for i := int32(0); i < n; i++ {
		g.inStart[i+1] += g.inStart[i]
	}
	cursor := make([]int64, n)
	u := NodeID(0)
	for i := int64(0); i < m; i++ {
		for g.outStart[u+1] <= i {
			u++
		}
		v := g.outTo[i]
		pos := g.inStart[v] + cursor[v]
		cursor[v]++
		g.inFrom[pos] = u
		g.inEdge[pos] = i
	}
}
