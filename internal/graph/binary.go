package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary graph format: a compact little-endian serialization for fast
// loading of large graphs (the text edge-list parses at ~10-20 MB/s; the
// binary format is I/O bound). Layout:
//
//	magic "HIMG" | version u32 | n u32 | m u64
//	outStart  (n+1) × u64
//	outTo     m × u32
//	outProb   m × f64
//	outPhi    m × f64
//	outWt     m × f64
//	opinion   n × f64
//
// The in-adjacency is rebuilt on load (cheaper than storing it).
const (
	binaryMagic   = "HIMG"
	binaryVersion = 1
)

// WriteBinary serializes g in the binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []interface{}{uint32(binaryVersion), uint32(g.n), uint64(len(g.outTo))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, arr := range []interface{}{g.outStart, g.outTo, g.outProb, g.outPhi, g.outWt, g.opinion} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxBinaryArcs bounds the arc count ReadBinary will accept. Combined
// with chunked payload reads it keeps a corrupt or adversarial header
// from driving an enormous up-front allocation: a truncated stream fails
// at its first missing chunk having allocated at most one chunk beyond
// the data actually present.
const maxBinaryArcs = 1 << 34

// readChunked reads count little-endian values of a fixed-size type,
// growing the destination one bounded chunk at a time so allocation
// tracks the bytes actually present in the stream.
func readChunked[T int32 | int64 | float64](r io.Reader, count uint64, what string) ([]T, error) {
	const chunk = 1 << 20
	capHint := count
	if capHint > chunk {
		capHint = chunk
	}
	out := make([]T, 0, capHint)
	for read := uint64(0); read < count; {
		n := count - read
		if n > chunk {
			n = chunk
		}
		start := len(out)
		out = append(out, make([]T, n)...)
		if err := binary.Read(r, binary.LittleEndian, out[start:]); err != nil {
			return nil, fmt.Errorf("graph: binary %s: %w", what, err)
		}
		read += n
	}
	return out, nil
}

// ReadBinary deserializes a graph written by WriteBinary, validating the
// header and every structural and value-range invariant before accepting
// the data: truncated, corrupt or adversarial input yields an error,
// never a panic or an unbounded allocation.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version, n uint32
	var m uint64
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("graph: binary version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("graph: binary node count: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("graph: binary arc count: %w", err)
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: node count %d overflows int32", n)
	}
	if m > maxBinaryArcs {
		return nil, fmt.Errorf("graph: implausible arc count %d (max %d)", m, uint64(maxBinaryArcs))
	}
	g := &Graph{n: int32(n)}
	var err error
	if g.outStart, err = readChunked[int64](br, uint64(n)+1, "CSR offsets"); err != nil {
		return nil, err
	}
	if g.outTo, err = readChunked[NodeID](br, m, "edge targets"); err != nil {
		return nil, err
	}
	if g.outProb, err = readChunked[float64](br, m, "probabilities"); err != nil {
		return nil, err
	}
	if g.outPhi, err = readChunked[float64](br, m, "interaction probabilities"); err != nil {
		return nil, err
	}
	if g.outWt, err = readChunked[float64](br, m, "LT weights"); err != nil {
		return nil, err
	}
	if g.opinion, err = readChunked[float64](br, uint64(n), "opinions"); err != nil {
		return nil, err
	}
	// Validate structure before building the in-adjacency.
	if g.outStart[0] != 0 || g.outStart[n] != int64(m) {
		return nil, fmt.Errorf("graph: corrupt CSR offsets")
	}
	for i := uint32(0); i < n; i++ {
		if g.outStart[i] > g.outStart[i+1] {
			return nil, fmt.Errorf("graph: non-monotone CSR offsets at %d", i)
		}
	}
	for _, v := range g.outTo {
		if v < 0 || v >= g.n {
			return nil, fmt.Errorf("graph: edge target %d out of range", v)
		}
	}
	for i, p := range g.outProb {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("graph: probability %v at edge %d out of range", p, i)
		}
	}
	for i, phi := range g.outPhi {
		if phi < 0 || phi > 1 || math.IsNaN(phi) {
			return nil, fmt.Errorf("graph: interaction probability %v at edge %d out of range", phi, i)
		}
	}
	for i, w := range g.outWt {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("graph: LT weight %v at edge %d out of range", w, i)
		}
	}
	for i, o := range g.opinion {
		if o < -1 || o > 1 || math.IsNaN(o) {
			return nil, fmt.Errorf("graph: opinion %v at node %d out of range", o, i)
		}
	}
	g.buildInAdjacency()
	return g, nil
}

// buildInAdjacency reconstructs the in-edge view from the out-edge CSR.
func (g *Graph) buildInAdjacency() {
	n := g.n
	m := int64(len(g.outTo))
	g.inStart = make([]int64, n+1)
	g.inFrom = make([]NodeID, m)
	g.inEdge = make([]int64, m)
	for _, v := range g.outTo {
		g.inStart[v+1]++
	}
	for i := int32(0); i < n; i++ {
		g.inStart[i+1] += g.inStart[i]
	}
	cursor := make([]int64, n)
	u := NodeID(0)
	for i := int64(0); i < m; i++ {
		for g.outStart[u+1] <= i {
			u++
		}
		v := g.outTo[i]
		pos := g.inStart[v] + cursor[v]
		cursor[v]++
		g.inFrom[pos] = u
		g.inEdge[pos] = i
	}
}
