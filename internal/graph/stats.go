package graph

import (
	"sort"

	"github.com/holisticim/holisticim/internal/rng"
)

// Stats summarizes a graph, mirroring the columns of the paper's Table 2.
type Stats struct {
	Nodes             int32
	Arcs              int64
	AvgOutDegree      float64
	MaxOutDegree      int32
	MaxInDegree       int32
	EffectiveDiameter float64 // 90th-percentile pairwise BFS distance (sampled)
	Reachable         float64 // avg fraction of nodes reachable from a sampled source
}

// ComputeStats gathers degree statistics and estimates the 90-percentile
// effective diameter from BFS over `samples` random sources. Deterministic
// given the seed.
func ComputeStats(g *Graph, samples int, seed uint64) Stats {
	st := Stats{Nodes: g.NumNodes(), Arcs: g.NumEdges()}
	if g.NumNodes() == 0 {
		return st
	}
	st.AvgOutDegree = float64(g.NumEdges()) / float64(g.NumNodes())
	for v := NodeID(0); v < g.NumNodes(); v++ {
		if d := g.OutDegree(v); d > st.MaxOutDegree {
			st.MaxOutDegree = d
		}
		if d := g.InDegree(v); d > st.MaxInDegree {
			st.MaxInDegree = d
		}
	}
	if samples <= 0 {
		samples = 32
	}
	if int32(samples) > g.NumNodes() {
		samples = int(g.NumNodes())
	}
	r := rng.New(seed)
	dist := make([]int32, g.NumNodes())
	queue := make([]NodeID, 0, g.NumNodes())
	var allDists []int32
	totalReach := 0.0
	for s := 0; s < samples; s++ {
		src := NodeID(r.Int31n(g.NumNodes()))
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		dist[src] = 0
		queue = append(queue, src)
		reached := 1
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.OutNeighbors(u) {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
					reached++
					allDists = append(allDists, dist[v])
				}
			}
		}
		totalReach += float64(reached) / float64(g.NumNodes())
	}
	st.Reachable = totalReach / float64(samples)
	if len(allDists) > 0 {
		sort.Slice(allDists, func(i, j int) bool { return allDists[i] < allDists[j] })
		idx := int(0.9 * float64(len(allDists)-1))
		st.EffectiveDiameter = float64(allDists[idx])
	}
	return st
}

// MeanEdgeProb returns the average influence probability p(u,v) over all
// arcs, or 0 for an edgeless graph. DegreeDiscount and similar heuristics
// that assume a single global p use this as the representative value on
// heterogeneous graphs.
func MeanEdgeProb(g *Graph) float64 {
	if len(g.outProb) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range g.outProb {
		sum += p
	}
	return sum / float64(len(g.outProb))
}

// BFSDistances returns the hop distance from src to every node (-1 when
// unreachable), following out-edges.
func BFSDistances(g *Graph, src NodeID) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.OutNeighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// DegreeHistogram returns counts of out-degrees: hist[d] = #nodes with
// out-degree d (capped at maxDeg; larger degrees accumulate in the last
// bucket).
func DegreeHistogram(g *Graph, maxDeg int) []int64 {
	hist := make([]int64, maxDeg+1)
	for v := NodeID(0); v < g.NumNodes(); v++ {
		d := int(g.OutDegree(v))
		if d > maxDeg {
			d = maxDeg
		}
		hist[d]++
	}
	return hist
}

// TopKByOutDegree returns the k nodes with largest out-degree, descending.
// Ties broken by node id for determinism.
func TopKByOutDegree(g *Graph, k int) []NodeID {
	n := int(g.NumNodes())
	if k > n {
		k = n
	}
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.OutDegree(ids[i]), g.OutDegree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	return ids[:k]
}

// IsDAG reports whether the graph has no directed cycle (Kahn's algorithm).
func IsDAG(g *Graph) bool {
	n := g.NumNodes()
	indeg := make([]int32, n)
	for v := NodeID(0); v < n; v++ {
		indeg[v] = g.InDegree(v)
	}
	queue := make([]NodeID, 0, n)
	for v := NodeID(0); v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := int32(0)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		seen++
		for _, v := range g.OutNeighbors(u) {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return seen == n
}
