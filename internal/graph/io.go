package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge-list. Supported line
// shapes (after stripping '#'-comments and blank lines):
//
//	u v
//	u v p
//	u v p phi
//
// Node ids must be non-negative integers; the node count is one more than
// the largest id seen. Undirected inputs should be pre-expanded to both
// arcs (see Builder.AddUndirected), matching the paper's convention.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	type rawEdge struct {
		u, v   NodeID
		p, phi float64
	}
	var edges []rawEdge
	maxID := NodeID(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("graph: line %d: expected 2-4 fields, got %d", lineNo, len(fields))
		}
		u64, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id %q: %v", lineNo, fields[0], err)
		}
		v64, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id %q: %v", lineNo, fields[1], err)
		}
		if u64 < 0 || v64 < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		e := rawEdge{u: NodeID(u64), v: NodeID(v64)}
		if len(fields) >= 3 {
			e.p, err = strconv.ParseFloat(fields[2], 64)
			if err != nil || e.p < 0 || e.p > 1 {
				return nil, fmt.Errorf("graph: line %d: bad probability %q", lineNo, fields[2])
			}
		}
		if len(fields) == 4 {
			e.phi, err = strconv.ParseFloat(fields[3], 64)
			if err != nil || e.phi < 0 || e.phi > 1 {
				return nil, fmt.Errorf("graph: line %d: bad interaction %q", lineNo, fields[3])
			}
		}
		if e.u > maxID {
			maxID = e.u
		}
		if e.v > maxID {
			maxID = e.v
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	b := NewBuilder(maxID + 1)
	for _, e := range edges {
		b.AddEdgeP(e.u, e.v, e.p, e.phi)
	}
	g := b.Build()
	g.SetDefaultLTWeights()
	return g, nil
}

// WriteEdgeList writes the graph as "u v p phi" lines, one arc per line,
// readable back by ReadEdgeList. Opinions are not serialized here; use
// WriteOpinions.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d arcs=%d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for u := NodeID(0); u < g.NumNodes(); u++ {
		nbrs := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		phis := g.OutPhis(u)
		for i, v := range nbrs {
			if _, err := fmt.Fprintf(bw, "%d %d %g %g\n", u, v, ps[i], phis[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteOpinions writes one "node opinion" line per node.
func WriteOpinions(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for v := NodeID(0); v < g.NumNodes(); v++ {
		if _, err := fmt.Fprintf(bw, "%d %g\n", v, g.Opinion(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadOpinions parses "node opinion" lines and applies them to g.
func ReadOpinions(r io.Reader, g *Graph) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return fmt.Errorf("graph: opinions line %d: expected 2 fields", lineNo)
		}
		id, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil || id < 0 || NodeID(id) >= g.NumNodes() {
			return fmt.Errorf("graph: opinions line %d: bad node id %q", lineNo, fields[0])
		}
		o, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || o < -1 || o > 1 {
			return fmt.Errorf("graph: opinions line %d: bad opinion %q", lineNo, fields[1])
		}
		g.SetOpinion(NodeID(id), o)
	}
	return sc.Err()
}
