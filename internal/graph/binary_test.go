package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/holisticim/holisticim/internal/rng"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := ErdosRenyi(500, 3000, rng.New(3))
	g.SetUniformProb(0.125)
	r := rng.New(5)
	for v := NodeID(0); v < g.NumNodes(); v++ {
		g.SetOpinion(v, r.Range(-1, 1))
	}
	g.SetEdgeParamsFunc(func(u, v NodeID) (float64, float64) { return 0.125, r.Float64() })
	g.SetDefaultLTWeights()

	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("size changed: %d/%d", g2.NumNodes(), g2.NumEdges())
	}
	for u := NodeID(0); u < g.NumNodes(); u++ {
		a, b := g.OutNeighbors(u), g2.OutNeighbors(u)
		if len(a) != len(b) {
			t.Fatalf("node %d degree changed", u)
		}
		pa, pb := g.OutProbs(u), g2.OutProbs(u)
		fa, fb := g.OutPhis(u), g2.OutPhis(u)
		wa, wb := g.OutWeights(u), g2.OutWeights(u)
		for i := range a {
			if a[i] != b[i] || pa[i] != pb[i] || fa[i] != fb[i] || wa[i] != wb[i] {
				t.Fatalf("node %d edge %d differs", u, i)
			}
		}
		if g.Opinion(u) != g2.Opinion(u) {
			t.Fatalf("node %d opinion differs", u)
		}
		if g.InDegree(u) != g2.InDegree(u) {
			t.Fatalf("node %d in-degree differs after rebuild", u)
		}
	}
	// In-edge index integrity.
	for v := NodeID(0); v < g2.NumNodes(); v++ {
		idxs := g2.InEdgeIndices(v)
		froms := g2.InNeighbors(v)
		for i, u := range froms {
			if p, ok := g2.EdgeProb(u, v); !ok || p != g2.ProbAt(idxs[i]) {
				t.Fatalf("in-edge index broken at (%d,%d)", u, v)
			}
		}
	}
}

// Round trip through a Builder with fully custom per-edge parameters:
// probabilities, interaction probabilities, LT weights and opinions must
// all survive byte-exactly.
func TestBinaryRoundTripCustomWeights(t *testing.T) {
	r := rng.New(11)
	b := NewBuilder(100)
	for i := 0; i < 400; i++ {
		u, v := NodeID(r.Int31n(100)), NodeID(r.Int31n(100))
		if u == v {
			continue
		}
		b.AddEdgeFull(u, v, r.Float64(), r.Float64(), r.Float64())
	}
	g := b.Build()
	for v := NodeID(0); v < g.NumNodes(); v++ {
		g.SetOpinion(v, r.Range(-1, 1))
	}

	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for u := NodeID(0); u < g.NumNodes(); u++ {
		pa, pb := g.OutProbs(u), g2.OutProbs(u)
		fa, fb := g.OutPhis(u), g2.OutPhis(u)
		wa, wb := g.OutWeights(u), g2.OutWeights(u)
		for i := range pa {
			if pa[i] != pb[i] || fa[i] != fb[i] || wa[i] != wb[i] {
				t.Fatalf("node %d edge %d params differ", u, i)
			}
		}
		if g.Opinion(u) != g2.Opinion(u) {
			t.Fatalf("node %d opinion differs", u)
		}
	}
	if g.Fingerprint() != g2.Fingerprint() {
		t.Fatal("fingerprint changed across round trip")
	}
}

// Truncation anywhere in the stream must yield an error — never a panic
// or a silent partial graph.
func TestBinaryTruncationSweep(t *testing.T) {
	g := ErdosRenyi(120, 600, rng.New(2))
	g.SetUniformProb(0.25)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	offsets := make(map[int]bool)
	for cut := 0; cut < 64 && cut < len(raw); cut++ {
		offsets[cut] = true // dense sweep over the header region
	}
	r := rng.New(4)
	for i := 0; i < 200; i++ {
		offsets[r.Intn(len(raw))] = true
	}
	offsets[len(raw)-1] = true
	for cut := range offsets {
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

// A header claiming an absurd arc count must be rejected up front (and a
// merely-large lie must fail at the first missing chunk, not allocate
// the full claimed size).
func TestBinaryRejectsImplausibleCounts(t *testing.T) {
	g := Path(4, 0.5, 0.5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Arc count lives at bytes [12,20).
	clobber := func(m uint64) []byte {
		out := append([]byte(nil), raw...)
		for i := 0; i < 8; i++ {
			out[12+i] = byte(m >> (8 * i))
		}
		return out
	}
	if _, err := ReadBinary(bytes.NewReader(clobber(1 << 60))); err == nil {
		t.Fatal("absurd arc count accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(clobber(1 << 30))); err == nil {
		t.Fatal("lying arc count accepted")
	}
}

// Out-of-range edge parameters (phi, LT weight) must be rejected, not
// just probabilities and opinions.
func TestBinaryRejectsBadEdgeParams(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdgeFull(0, 1, 0.5, 0.5, 0.5)
	b.AddEdgeFull(1, 2, 0.5, 0.5, 0.5)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Layout after the 20-byte header: outStart 4×8, outTo 2×4, then
	// outProb 2×8, outPhi 2×8, outWt 2×8.
	const probOff = 20 + 32 + 8
	writeFloat := func(pos int, f float64) []byte {
		out := append([]byte(nil), raw...)
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			out[pos+i] = byte(bits >> (8 * i))
		}
		return out
	}
	cases := map[string][]byte{
		"prob > 1":     writeFloat(probOff, 1.5),
		"phi < 0":      writeFloat(probOff+16, -0.25),
		"phi NaN":      writeFloat(probOff+16, math.NaN()),
		"wt negative":  writeFloat(probOff+32, -1),
		"wt infinite":  writeFloat(probOff+32, math.Inf(1)),
		"opinion NaN":  writeFloat(len(raw)-24, math.NaN()),
		"opinion wild": writeFloat(len(raw)-8, 7),
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Unclobbered input still loads.
	if _, err := ReadBinary(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pristine input rejected: %v", err)
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	g := Path(4, 0.5, 0.5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	cases := map[string][]byte{
		"bad magic":     append([]byte("XXXX"), raw[4:]...),
		"truncated":     raw[:len(raw)-9],
		"short header":  raw[:6],
		"empty":         nil,
		"corrupt probs": corruptAt(raw, len(raw)-20, 0xFF), // clobber opinion/prob floats
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Bad version.
	bad := append([]byte(nil), raw...)
	bad[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version accepted: %v", err)
	}
}

func corruptAt(raw []byte, pos int, val byte) []byte {
	out := append([]byte(nil), raw...)
	for i := 0; i < 8 && pos+i < len(out); i++ {
		out[pos+i] = val
	}
	return out
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := NewBuilder(3).Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 3 || g2.NumEdges() != 0 {
		t.Fatalf("empty graph round trip: %d/%d", g2.NumNodes(), g2.NumEdges())
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	g := BarabasiAlbert(20000, 3, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		_ = WriteBinary(&buf, g)
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	g := BarabasiAlbert(20000, 3, rng.New(1))
	var buf bytes.Buffer
	_ = WriteBinary(&buf, g)
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ReadBinary(bytes.NewReader(data))
	}
}
