package graph

import (
	"bytes"
	"strings"
	"testing"

	"github.com/holisticim/holisticim/internal/rng"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := ErdosRenyi(500, 3000, rng.New(3))
	g.SetUniformProb(0.125)
	r := rng.New(5)
	for v := NodeID(0); v < g.NumNodes(); v++ {
		g.SetOpinion(v, r.Range(-1, 1))
	}
	g.SetEdgeParamsFunc(func(u, v NodeID) (float64, float64) { return 0.125, r.Float64() })
	g.SetDefaultLTWeights()

	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("size changed: %d/%d", g2.NumNodes(), g2.NumEdges())
	}
	for u := NodeID(0); u < g.NumNodes(); u++ {
		a, b := g.OutNeighbors(u), g2.OutNeighbors(u)
		if len(a) != len(b) {
			t.Fatalf("node %d degree changed", u)
		}
		pa, pb := g.OutProbs(u), g2.OutProbs(u)
		fa, fb := g.OutPhis(u), g2.OutPhis(u)
		wa, wb := g.OutWeights(u), g2.OutWeights(u)
		for i := range a {
			if a[i] != b[i] || pa[i] != pb[i] || fa[i] != fb[i] || wa[i] != wb[i] {
				t.Fatalf("node %d edge %d differs", u, i)
			}
		}
		if g.Opinion(u) != g2.Opinion(u) {
			t.Fatalf("node %d opinion differs", u)
		}
		if g.InDegree(u) != g2.InDegree(u) {
			t.Fatalf("node %d in-degree differs after rebuild", u)
		}
	}
	// In-edge index integrity.
	for v := NodeID(0); v < g2.NumNodes(); v++ {
		idxs := g2.InEdgeIndices(v)
		froms := g2.InNeighbors(v)
		for i, u := range froms {
			if p, ok := g2.EdgeProb(u, v); !ok || p != g2.ProbAt(idxs[i]) {
				t.Fatalf("in-edge index broken at (%d,%d)", u, v)
			}
		}
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	g := Path(4, 0.5, 0.5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	cases := map[string][]byte{
		"bad magic":     append([]byte("XXXX"), raw[4:]...),
		"truncated":     raw[:len(raw)-9],
		"short header":  raw[:6],
		"empty":         nil,
		"corrupt probs": corruptAt(raw, len(raw)-20, 0xFF), // clobber opinion/prob floats
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Bad version.
	bad := append([]byte(nil), raw...)
	bad[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version accepted: %v", err)
	}
}

func corruptAt(raw []byte, pos int, val byte) []byte {
	out := append([]byte(nil), raw...)
	for i := 0; i < 8 && pos+i < len(out); i++ {
		out[pos+i] = val
	}
	return out
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := NewBuilder(3).Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 3 || g2.NumEdges() != 0 {
		t.Fatalf("empty graph round trip: %d/%d", g2.NumNodes(), g2.NumEdges())
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	g := BarabasiAlbert(20000, 3, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		_ = WriteBinary(&buf, g)
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	g := BarabasiAlbert(20000, 3, rng.New(1))
	var buf bytes.Buffer
	_ = WriteBinary(&buf, g)
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ReadBinary(bytes.NewReader(data))
	}
}
