package graph

import (
	"fmt"
	"math"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. Parallel arcs
// are collapsed (the first occurrence's parameters win); self-loops are
// dropped, matching the conventions of the IM literature.
type Builder struct {
	n     int32
	edges []builderEdge
}

type builderEdge struct {
	u, v   NodeID
	p, phi float64
	w      float64
}

// NewBuilder returns a Builder for a graph with n nodes (ids 0..n-1).
func NewBuilder(n int32) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// Grow ensures the builder can accept node ids up to n-1, enlarging the
// eventual graph if needed. Useful for loaders that discover the node count
// while scanning.
func (b *Builder) Grow(n int32) {
	if n > b.n {
		b.n = n
	}
}

// NumNodes returns the current node count.
func (b *Builder) NumNodes() int32 { return b.n }

// AddEdge adds the arc (u,v) with zero-valued parameters (assign them later
// via the Graph's Set* methods).
func (b *Builder) AddEdge(u, v NodeID) { b.AddEdgeFull(u, v, 0, 0, 0) }

// AddEdgeP adds the arc (u,v) with influence probability p and interaction
// probability phi.
func (b *Builder) AddEdgeP(u, v NodeID, p, phi float64) { b.AddEdgeFull(u, v, p, phi, 0) }

// AddEdgeFull adds the arc (u,v) with all edge parameters. Parameters are
// validated with the same bounds ReadBinary enforces — p and ϕ are
// probabilities in [0,1], the LT weight is non-negative and finite — so a
// graph assembled programmatically (including from live mutation batches)
// can never hold values a file load would have rejected.
func (b *Builder) AddEdgeFull(u, v NodeID, p, phi, w float64) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("graph: edge (%d,%d) probability %v out of [0,1]", u, v, p))
	}
	if phi < 0 || phi > 1 || math.IsNaN(phi) {
		panic(fmt.Sprintf("graph: edge (%d,%d) interaction %v out of [0,1]", u, v, phi))
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("graph: edge (%d,%d) LT weight %v negative or non-finite", u, v, w))
	}
	if u == v {
		return // self-loops are meaningless for diffusion
	}
	b.edges = append(b.edges, builderEdge{u, v, p, phi, w})
}

// AddUndirected adds both arcs (u,v) and (v,u) with the same parameters —
// the paper's convention for undirected datasets ("the undirected graphs
// were made directed by considering, for each edge, the arcs in both the
// directions").
func (b *Builder) AddUndirected(u, v NodeID, p, phi float64) {
	b.AddEdgeFull(u, v, p, phi, 0)
	b.AddEdgeFull(v, u, p, phi, 0)
}

// Build produces the immutable CSR graph. The builder may be reused
// afterwards (its edge list is not consumed). Out-neighbor lists are sorted
// by target id, enabling binary-search HasEdge and deterministic iteration.
func (b *Builder) Build() *Graph {
	// Sort by (u,v) and dedupe keeping the first occurrence.
	es := append([]builderEdge(nil), b.edges...)
	sort.SliceStable(es, func(i, j int) bool {
		if es[i].u != es[j].u {
			return es[i].u < es[j].u
		}
		return es[i].v < es[j].v
	})
	dst := 0
	for i := range es {
		if i > 0 && es[i].u == es[dst-1].u && es[i].v == es[dst-1].v {
			continue
		}
		es[dst] = es[i]
		dst++
	}
	es = es[:dst]

	g := &Graph{n: b.n}
	m := int64(len(es))
	g.outStart = make([]int64, b.n+1)
	g.outTo = make([]NodeID, m)
	g.outProb = make([]float64, m)
	g.outPhi = make([]float64, m)
	g.outWt = make([]float64, m)
	g.opinion = make([]float64, b.n)

	for _, e := range es {
		g.outStart[e.u+1]++
	}
	for i := int32(0); i < b.n; i++ {
		g.outStart[i+1] += g.outStart[i]
	}
	for i, e := range es {
		g.outTo[i] = e.v
		g.outProb[i] = e.p
		g.outPhi[i] = e.phi
		g.outWt[i] = e.w
	}

	// In-adjacency: counting sort by target.
	g.inStart = make([]int64, b.n+1)
	g.inFrom = make([]NodeID, m)
	g.inEdge = make([]int64, m)
	for _, e := range es {
		g.inStart[e.v+1]++
	}
	for i := int32(0); i < b.n; i++ {
		g.inStart[i+1] += g.inStart[i]
	}
	// Edges are grouped by u in out order, so recover u by tracking the
	// CSR row boundaries instead of a search.
	cursor := make([]int64, b.n)
	u := NodeID(0)
	for i := int64(0); i < m; i++ {
		for g.outStart[u+1] <= i {
			u++
		}
		v := g.outTo[i]
		pos := g.inStart[v] + cursor[v]
		cursor[v]++
		g.inFrom[pos] = u
		g.inEdge[pos] = i
	}
	return g
}

// FromEdges is a convenience constructor: build a graph over n nodes from a
// list of (u,v) pairs with zeroed parameters.
func FromEdges(n int32, edges [][2]NodeID) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
