package graph

import "math"

// Fingerprint returns a 64-bit content hash of the graph: topology (CSR
// offsets and targets) plus every model parameter (p, ϕ, LT weight,
// opinions). Two graphs with identical fingerprints are, for hashing
// purposes, the same diffusion instance, which is what lets a sketch
// snapshot refuse to load against a different graph than it was built on.
// FNV-1a over the raw arrays: stable across processes and releases of the
// binary format, not cryptographic.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x00000100000001b3
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(g.n))
	mix(uint64(len(g.outTo)))
	for _, v := range g.outStart {
		mix(uint64(v))
	}
	for _, v := range g.outTo {
		mix(uint64(uint32(v)))
	}
	for _, arr := range [][]float64{g.outProb, g.outPhi, g.outWt, g.opinion} {
		for _, f := range arr {
			mix(math.Float64bits(f))
		}
	}
	return h
}
