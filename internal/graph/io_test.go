package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
0 1 0.5 0.7
1 2
2 0 0.25
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("size %d/%d", g.NumNodes(), g.NumEdges())
	}
	if p, _ := g.EdgeProb(0, 1); p != 0.5 {
		t.Fatalf("p(0,1)=%v", p)
	}
	if phi, _ := g.EdgePhi(0, 1); phi != 0.7 {
		t.Fatalf("phi(0,1)=%v", phi)
	}
	if p, _ := g.EdgeProb(1, 2); p != 0 {
		t.Fatalf("default p should be 0, got %v", p)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",            // too few fields
		"0 1 2 3 4\n",    // too many fields
		"a 1\n",          // bad id
		"0 -1\n",         // negative id
		"0 1 1.5\n",      // p out of range
		"0 1 0.5 -0.1\n", // phi out of range
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q: expected error", c)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdgeP(0, 1, 0.125, 0.5)
	b.AddEdgeP(1, 2, 0.0625, 0.75)
	b.AddEdgeP(3, 0, 1, 0)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round-trip changed size: %d/%d", g2.NumNodes(), g2.NumEdges())
	}
	for u := NodeID(0); u < g.NumNodes(); u++ {
		nbrs := g.OutNeighbors(u)
		for i, v := range nbrs {
			p1 := g.OutProbs(u)[i]
			p2, ok := g2.EdgeProb(u, v)
			if !ok || p1 != p2 {
				t.Fatalf("edge (%d,%d) p %v vs %v", u, v, p1, p2)
			}
			f1 := g.OutPhis(u)[i]
			f2, _ := g2.EdgePhi(u, v)
			if f1 != f2 {
				t.Fatalf("edge (%d,%d) phi %v vs %v", u, v, f1, f2)
			}
		}
	}
}

func TestOpinionsRoundTrip(t *testing.T) {
	g := Path(4, 0.1, 0.5)
	g.SetOpinions([]float64{0.5, -0.25, 1, -1})
	var buf bytes.Buffer
	if err := WriteOpinions(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2 := Path(4, 0.1, 0.5)
	if err := ReadOpinions(&buf, g2); err != nil {
		t.Fatal(err)
	}
	for v := NodeID(0); v < 4; v++ {
		if g.Opinion(v) != g2.Opinion(v) {
			t.Fatalf("opinion %d: %v vs %v", v, g.Opinion(v), g2.Opinion(v))
		}
	}
}

func TestReadOpinionsErrors(t *testing.T) {
	g := Path(2, 0.1, 0.5)
	for _, c := range []string{"5 0.5\n", "0 2\n", "0\n"} {
		if err := ReadOpinions(strings.NewReader(c), g); err == nil {
			t.Fatalf("input %q: expected error", c)
		}
	}
}
