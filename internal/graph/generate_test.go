package graph

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/rng"
)

func TestErdosRenyiShape(t *testing.T) {
	g := ErdosRenyi(500, 3000, rng.New(7))
	if g.NumNodes() != 500 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	// duplicates collapse, so m <= 3000 but should be close
	if g.NumEdges() < 2800 || g.NumEdges() > 3000 {
		t.Fatalf("m=%d", g.NumEdges())
	}
}

func TestErdosRenyiDeterminism(t *testing.T) {
	a := ErdosRenyi(100, 400, rng.New(9))
	b := ErdosRenyi(100, 400, rng.New(9))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("nondeterministic edge count")
	}
	for u := NodeID(0); u < 100; u++ {
		an, bn := a.OutNeighbors(u), b.OutNeighbors(u)
		if len(an) != len(bn) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatalf("node %d adjacency differs", u)
			}
		}
	}
}

func TestBarabasiAlbertDegreeSkew(t *testing.T) {
	g := BarabasiAlbert(2000, 3, rng.New(11))
	st := ComputeStats(g, 16, 1)
	// Each new node adds 3 undirected edges = 6 arcs ⇒ avg out-degree ≈ 6.
	if st.AvgOutDegree < 4.5 || st.AvgOutDegree > 7.5 {
		t.Fatalf("avg degree %v", st.AvgOutDegree)
	}
	// Preferential attachment must create hubs: max degree well above avg.
	if float64(st.MaxOutDegree) < 5*st.AvgOutDegree {
		t.Fatalf("no hubs: max %d avg %v", st.MaxOutDegree, st.AvgOutDegree)
	}
	// Undirected expansion means out-degree == in-degree per node.
	for v := NodeID(0); v < g.NumNodes(); v++ {
		if g.OutDegree(v) != g.InDegree(v) {
			t.Fatalf("node %d asymmetric in undirected graph", v)
		}
	}
}

func TestBarabasiAlbertDeterminism(t *testing.T) {
	a := BarabasiAlbert(500, 3, rng.New(77))
	b := BarabasiAlbert(500, 3, rng.New(77))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for u := NodeID(0); u < a.NumNodes(); u++ {
		an, bn := a.OutNeighbors(u), b.OutNeighbors(u)
		if len(an) != len(bn) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range an {
			if an[i] != bn[i] {
				t.Fatalf("node %d adjacency differs", u)
			}
		}
	}
}

func TestRMATShapeAndSkew(t *testing.T) {
	g := RMAT(1<<12, 40000, DefaultRMAT, false, rng.New(13))
	if g.NumNodes() != 1<<12 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	if g.NumEdges() < 30000 {
		t.Fatalf("m=%d too small after dedupe", g.NumEdges())
	}
	st := ComputeStats(g, 8, 3)
	if float64(st.MaxOutDegree) < 4*st.AvgOutDegree {
		t.Fatalf("R-MAT not skewed: max %d avg %v", st.MaxOutDegree, st.AvgOutDegree)
	}
}

func TestRMATUndirectedSymmetry(t *testing.T) {
	g := RMAT(256, 2000, DefaultRMAT, true, rng.New(17))
	for u := NodeID(0); u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(u) {
			if !g.HasEdge(v, u) {
				t.Fatalf("missing reverse arc (%d,%d)", v, u)
			}
		}
	}
}

func TestPathStructure(t *testing.T) {
	g := Path(5, 0.3, 0.6)
	if g.NumEdges() != 4 {
		t.Fatalf("m=%d", g.NumEdges())
	}
	d := BFSDistances(g, 0)
	for i := int32(0); i < 5; i++ {
		if d[i] != i {
			t.Fatalf("dist[%d]=%d", i, d[i])
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	g := RandomTree(200, 0.1, 0.5, rng.New(19))
	if g.NumEdges() != 199 {
		t.Fatalf("tree should have n-1 edges, got %d", g.NumEdges())
	}
	if !IsDAG(g) {
		t.Fatal("tree is not a DAG?!")
	}
	d := BFSDistances(g, 0)
	for i, dist := range d {
		if dist == -1 {
			t.Fatalf("node %d unreachable from root", i)
		}
	}
	for v := NodeID(1); v < g.NumNodes(); v++ {
		if g.InDegree(v) != 1 {
			t.Fatalf("node %d has in-degree %d", v, g.InDegree(v))
		}
	}
}

func TestRandomDAGIsDAG(t *testing.T) {
	g := RandomDAG(80, 0.15, 0.1, 0.5, rng.New(23))
	if !IsDAG(g) {
		t.Fatal("RandomDAG produced a cycle")
	}
	g2 := Cycle(5, 0.1, 0.5)
	if IsDAG(g2) {
		t.Fatal("cycle misclassified as DAG")
	}
}

func TestLayeredBipartiteConstruction(t *testing.T) {
	g := LayeredBipartite(4)
	if g.NumNodes() != 12 || g.NumEdges() != 8 {
		t.Fatalf("size %d/%d", g.NumNodes(), g.NumEdges())
	}
	// last source's edges have phi=0
	if phi, _ := g.EdgePhi(3, 4+6); phi != 0 {
		t.Fatalf("phi of last source = %v", phi)
	}
	if phi, _ := g.EdgePhi(0, 4); phi != 1 {
		t.Fatalf("phi of first source = %v", phi)
	}
	if g.Opinion(0) != 1 || g.Opinion(5) != 0 {
		t.Fatal("opinions wrong")
	}
}

func TestSetCoverReductionShape(t *testing.T) {
	g, seeds := SetCoverReduction(3, [][]int{{0, 1}, {1, 2}})
	// layers: 2 subsets + 3 elements + (2+3-2)=3 z nodes + sink = 9
	if g.NumNodes() != 9 {
		t.Fatalf("n=%d", g.NumNodes())
	}
	if len(seeds) != 2 {
		t.Fatalf("seeds %v", seeds)
	}
	if math.Abs(g.Opinion(2)-1.0/3) > 1e-12 { // first element node
		t.Fatalf("element opinion %v", g.Opinion(2))
	}
	if math.Abs(g.Opinion(8)-(-1+1.0/3)) > 1e-12 { // sink
		t.Fatalf("sink opinion %v", g.Opinion(8))
	}
}

func TestStatsOnKnownGraph(t *testing.T) {
	g := Path(10, 0.1, 0.5)
	st := ComputeStats(g, 10, 5)
	if st.Nodes != 10 || st.Arcs != 9 {
		t.Fatalf("stats %+v", st)
	}
	if st.AvgOutDegree != 0.9 {
		t.Fatalf("avg degree %v", st.AvgOutDegree)
	}
}

func TestTopKByOutDegree(t *testing.T) {
	g := Star(6, 0.1, 0.5)
	top := TopKByOutDegree(g, 2)
	if top[0] != 0 {
		t.Fatalf("hub should rank first, got %v", top)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5, 0.1, 0.5) // node 0 has degree 4, others 0
	h := DegreeHistogram(g, 10)
	if h[0] != 4 || h[4] != 1 {
		t.Fatalf("hist %v", h)
	}
}
