package graph

import (
	"testing"

	"github.com/holisticim/holisticim/internal/rng"
)

func TestFingerprint(t *testing.T) {
	g := ErdosRenyi(200, 800, rng.New(6))
	g.SetUniformProb(0.1)
	fp := g.Fingerprint()

	// Deterministic and clone-stable.
	if g.Fingerprint() != fp {
		t.Fatal("fingerprint not deterministic")
	}
	if g.Clone().Fingerprint() != fp {
		t.Fatal("clone changed the fingerprint")
	}

	// Every parameter layer participates.
	c := g.Clone()
	c.SetUniformProb(0.2)
	if c.Fingerprint() == fp {
		t.Fatal("probability change not detected")
	}
	c = g.Clone()
	c.SetUniformPhi(0.5)
	if c.Fingerprint() == fp {
		t.Fatal("interaction change not detected")
	}
	c = g.Clone()
	c.SetDefaultLTWeights()
	if c.Fingerprint() == fp {
		t.Fatal("LT weight change not detected")
	}
	c = g.Clone()
	c.SetOpinion(7, 0.5)
	if c.Fingerprint() == fp {
		t.Fatal("opinion change not detected")
	}

	// Topology participates.
	if ErdosRenyi(200, 800, rng.New(7)).Fingerprint() == fp {
		t.Fatal("different topology collides")
	}
}
