// Package graph provides the directed-graph substrate used by every
// algorithm in this repository: an immutable CSR (compressed sparse row)
// representation with per-edge influence probability p(u,v), per-edge
// interaction probability ϕ(u,v) (Def. 5 of the paper) and per-node opinion
// o_v ∈ [-1,1] (Def. 4), plus builders, text I/O, statistics and synthetic
// generators.
//
// The representation stores both out-adjacency (used by forward simulation
// and by EaSyIM/OSIM score assignment) and in-adjacency (used by the LT
// model, weighted-cascade assignment and reverse-reachable sampling). Edge
// parameters are stored once, on the out-edge arrays; in-edges carry an
// index back into the out-edge arrays so the two views can never disagree.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a node. Graphs are limited to ~2.1 billion nodes which
// is far beyond what this library targets in memory.
type NodeID = int32

// Graph is an immutable directed graph in CSR form. Use a Builder to
// construct one. The zero value is an empty graph.
//
// Mutating methods (SetUniformProb, SetOpinions, ...) are provided for the
// model-parameter layers only — the topology is fixed after Build.
type Graph struct {
	n int32

	outStart []int64  // len n+1; out-edges of u are indices [outStart[u], outStart[u+1])
	outTo    []NodeID // len m
	outProb  []float64
	outPhi   []float64
	outWt    []float64 // LT weight w(u,v); by convention 1/|In(v)| unless overridden

	inStart []int64
	inFrom  []NodeID
	inEdge  []int64 // index into out arrays for the same edge

	opinion []float64 // len n, in [-1,1]
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int32 { return g.n }

// NumEdges returns |E| (number of directed arcs).
func (g *Graph) NumEdges() int64 { return int64(len(g.outTo)) }

// OutDegree returns |Out(u)|.
func (g *Graph) OutDegree(u NodeID) int32 {
	return int32(g.outStart[u+1] - g.outStart[u])
}

// InDegree returns |In(v)|.
func (g *Graph) InDegree(v NodeID) int32 {
	return int32(g.inStart[v+1] - g.inStart[v])
}

// OutNeighbors returns the slice of targets of u's out-edges. The slice
// aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(u NodeID) []NodeID {
	return g.outTo[g.outStart[u]:g.outStart[u+1]]
}

// OutProbs returns the influence probabilities aligned with OutNeighbors(u).
func (g *Graph) OutProbs(u NodeID) []float64 {
	return g.outProb[g.outStart[u]:g.outStart[u+1]]
}

// OutPhis returns the interaction probabilities aligned with OutNeighbors(u).
func (g *Graph) OutPhis(u NodeID) []float64 {
	return g.outPhi[g.outStart[u]:g.outStart[u+1]]
}

// OutWeights returns the LT edge weights aligned with OutNeighbors(u).
func (g *Graph) OutWeights(u NodeID) []float64 {
	return g.outWt[g.outStart[u]:g.outStart[u+1]]
}

// InNeighbors returns the slice of sources of v's in-edges. The slice
// aliases internal storage and must not be modified.
func (g *Graph) InNeighbors(v NodeID) []NodeID {
	return g.inFrom[g.inStart[v]:g.inStart[v+1]]
}

// InEdgeIndices returns, aligned with InNeighbors(v), the positions of those
// edges in the out-edge arrays; use InProbAt/InPhiAt/InWeightAt or index the
// Raw* accessors with them.
func (g *Graph) InEdgeIndices(v NodeID) []int64 {
	return g.inEdge[g.inStart[v]:g.inStart[v+1]]
}

// OutEdgeBase returns the position in the out-edge arrays of u's first
// out-edge; the edge to OutNeighbors(u)[i] has position OutEdgeBase(u)+i.
func (g *Graph) OutEdgeBase(u NodeID) int64 { return g.outStart[u] }

// ProbAt returns p for the edge at out-array position idx.
func (g *Graph) ProbAt(idx int64) float64 { return g.outProb[idx] }

// PhiAt returns ϕ for the edge at out-array position idx.
func (g *Graph) PhiAt(idx int64) float64 { return g.outPhi[idx] }

// WeightAt returns the LT weight for the edge at out-array position idx.
func (g *Graph) WeightAt(idx int64) float64 { return g.outWt[idx] }

// Opinion returns o_v.
func (g *Graph) Opinion(v NodeID) float64 { return g.opinion[v] }

// Opinions returns the full opinion vector. The slice aliases internal
// storage; treat it as read-only unless you own the graph.
func (g *Graph) Opinions() []float64 { return g.opinion }

// HasEdge reports whether the arc (u,v) exists. O(log outdeg(u)) — the
// out-neighbor lists are sorted by Build.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.findEdge(u, v)
	return ok
}

// EdgeProb returns p(u,v) and whether the arc exists.
func (g *Graph) EdgeProb(u, v NodeID) (float64, bool) {
	i, ok := g.findEdge(u, v)
	if !ok {
		return 0, false
	}
	return g.outProb[i], true
}

// EdgePhi returns ϕ(u,v) and whether the arc exists.
func (g *Graph) EdgePhi(u, v NodeID) (float64, bool) {
	i, ok := g.findEdge(u, v)
	if !ok {
		return 0, false
	}
	return g.outPhi[i], true
}

func (g *Graph) findEdge(u, v NodeID) (int64, bool) {
	lo, hi := g.outStart[u], g.outStart[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case g.outTo[mid] == v:
			return mid, true
		case g.outTo[mid] < v:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, false
}

// SetUniformProb assigns p(u,v)=p to every edge (the conventional IC
// parameterization, p=0.1 in the paper's experiments).
func (g *Graph) SetUniformProb(p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: probability %v out of [0,1]", p))
	}
	for i := range g.outProb {
		g.outProb[i] = p
	}
}

// SetWeightedCascadeProb assigns p(u,v)=1/|In(v)| (the WC model convention).
// Nodes with in-degree 0 cannot be targets of any edge, so no division by
// zero can occur.
func (g *Graph) SetWeightedCascadeProb() {
	for v := int32(0); v < g.n; v++ {
		d := g.InDegree(v)
		if d == 0 {
			continue
		}
		p := 1 / float64(d)
		for _, e := range g.InEdgeIndices(v) {
			g.outProb[e] = p
		}
	}
}

// SetDefaultLTWeights assigns w(u,v)=1/|In(v)|, the conventional LT
// parameterization used in the paper's experiments. Incoming weights of
// every node then sum to at most 1, as the LT model requires.
func (g *Graph) SetDefaultLTWeights() {
	for v := int32(0); v < g.n; v++ {
		d := g.InDegree(v)
		if d == 0 {
			continue
		}
		w := 1 / float64(d)
		for _, e := range g.InEdgeIndices(v) {
			g.outWt[e] = w
		}
	}
}

// SetTrivalencyProb assigns each edge a probability drawn uniformly from
// the given values (the TRIVALENCY scheme of Chen et al., conventionally
// {0.1, 0.01, 0.001}), using a deterministic per-edge hash of (u,v) and
// the seed so assignments are reproducible and order-independent.
func (g *Graph) SetTrivalencyProb(values []float64, seed uint64) {
	if len(values) == 0 {
		values = []float64{0.1, 0.01, 0.001}
	}
	for _, p := range values {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("graph: trivalency probability %v out of [0,1]", p))
		}
	}
	for u := int32(0); u < g.n; u++ {
		for i := g.outStart[u]; i < g.outStart[u+1]; i++ {
			v := g.outTo[i]
			h := seed ^ uint64(u)*0x9e3779b97f4a7c15 ^ uint64(v)*0xd1342543de82ef95
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
			h ^= h >> 33
			g.outProb[i] = values[h%uint64(len(values))]
		}
	}
}

// SetUniformPhi assigns ϕ(u,v)=phi to every edge.
func (g *Graph) SetUniformPhi(phi float64) {
	if phi < 0 || phi > 1 {
		panic(fmt.Sprintf("graph: interaction probability %v out of [0,1]", phi))
	}
	for i := range g.outPhi {
		g.outPhi[i] = phi
	}
}

// SetEdgeParamsFunc assigns p and ϕ for every edge from a callback. The
// callback receives (u, v) and returns (p, phi). Useful for data-driven
// parameterizations such as the Twitter interaction estimates.
func (g *Graph) SetEdgeParamsFunc(f func(u, v NodeID) (p, phi float64)) {
	for u := int32(0); u < g.n; u++ {
		for i := g.outStart[u]; i < g.outStart[u+1]; i++ {
			p, phi := f(u, g.outTo[i])
			if p < 0 || p > 1 || phi < 0 || phi > 1 {
				panic(fmt.Sprintf("graph: edge params (%v,%v) out of [0,1]", p, phi))
			}
			g.outProb[i] = p
			g.outPhi[i] = phi
		}
	}
}

// SetOpinions copies the given opinion vector into the graph. The slice
// length must equal NumNodes and every value must lie in [-1,1].
func (g *Graph) SetOpinions(o []float64) {
	if int32(len(o)) != g.n {
		panic(fmt.Sprintf("graph: opinion vector length %d != n %d", len(o), g.n))
	}
	for i, v := range o {
		if v < -1 || v > 1 || math.IsNaN(v) {
			panic(fmt.Sprintf("graph: opinion %v at node %d out of [-1,1]", v, i))
		}
	}
	copy(g.opinion, o)
}

// SetOpinion sets a single node's opinion.
func (g *Graph) SetOpinion(v NodeID, o float64) {
	if o < -1 || o > 1 || math.IsNaN(o) {
		panic(fmt.Sprintf("graph: opinion %v out of [-1,1]", o))
	}
	g.opinion[v] = o
}

// Transpose returns a new graph with every arc reversed. Edge parameters
// follow their arcs; opinions are copied. Used by tests and by reverse
// sampling diagnostics.
func (g *Graph) Transpose() *Graph {
	b := NewBuilder(g.n)
	for u := int32(0); u < g.n; u++ {
		nbrs := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		phis := g.OutPhis(u)
		for i, v := range nbrs {
			b.AddEdgeFull(v, u, ps[i], phis[i], 0)
		}
	}
	t := b.Build()
	copy(t.opinion, g.opinion)
	t.SetDefaultLTWeights()
	return t
}

// Clone returns a deep copy. Useful when an experiment needs to vary edge
// parameters without disturbing a shared topology.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n}
	c.outStart = append([]int64(nil), g.outStart...)
	c.outTo = append([]NodeID(nil), g.outTo...)
	c.outProb = append([]float64(nil), g.outProb...)
	c.outPhi = append([]float64(nil), g.outPhi...)
	c.outWt = append([]float64(nil), g.outWt...)
	c.inStart = append([]int64(nil), g.inStart...)
	c.inFrom = append([]NodeID(nil), g.inFrom...)
	c.inEdge = append([]int64(nil), g.inEdge...)
	c.opinion = append([]float64(nil), g.opinion...)
	return c
}

// InducedSubgraph returns the subgraph on the given node set plus a mapping
// old→new id (-1 for excluded nodes). Edge parameters and opinions are
// carried over. Used by the Twitter topic-subgraph pipeline.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, []NodeID) {
	remap := make([]NodeID, g.n)
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range nodes {
		if remap[v] != -1 {
			panic("graph: duplicate node in InducedSubgraph")
		}
		remap[v] = NodeID(i)
	}
	b := NewBuilder(int32(len(nodes)))
	for _, u := range nodes {
		nu := remap[u]
		nbrs := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		phis := g.OutPhis(u)
		for i, v := range nbrs {
			if nv := remap[v]; nv != -1 {
				b.AddEdgeFull(nu, nv, ps[i], phis[i], 0)
			}
		}
	}
	sub := b.Build()
	for i, v := range nodes {
		sub.opinion[i] = g.opinion[v]
	}
	sub.SetDefaultLTWeights()
	return sub, remap
}

// MemoryFootprint returns the approximate number of bytes held by the
// graph's slices. Used by the experiment harness to separate "graph
// loading" memory from algorithm "execution" memory, mirroring the stacked
// bars in Figures 5h and 6j.
func (g *Graph) MemoryFootprint() int64 {
	bytes := int64(len(g.outStart))*8 +
		int64(len(g.outTo))*4 +
		int64(len(g.outProb))*8 +
		int64(len(g.outPhi))*8 +
		int64(len(g.outWt))*8 +
		int64(len(g.inStart))*8 +
		int64(len(g.inFrom))*4 +
		int64(len(g.inEdge))*8 +
		int64(len(g.opinion))*8
	return bytes
}
