package graph

import (
	"fmt"

	"github.com/holisticim/holisticim/internal/rng"
)

// This file contains the synthetic graph generators used as stand-ins for
// the paper's SNAP/arXiv datasets (DESIGN.md §3 documents the substitution).
// All generators are deterministic given their RNG.

// ErdosRenyi samples a directed G(n, m) graph: m arcs chosen uniformly
// without self-loops. Duplicate arcs are collapsed by the builder so the
// resulting graph may have slightly fewer than m arcs on dense inputs.
func ErdosRenyi(n int32, m int64, r *rng.RNG) *Graph {
	if n < 2 {
		panic("graph: ErdosRenyi needs n >= 2")
	}
	b := NewBuilder(n)
	for i := int64(0); i < m; i++ {
		u := NodeID(r.Int31n(n))
		v := NodeID(r.Int31n(n))
		for v == u {
			v = NodeID(r.Int31n(n))
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// BarabasiAlbert grows an undirected preferential-attachment graph with
// mPerNode edges added per new node, then expands each undirected edge to
// both arcs. This matches the heavy-tailed degree distribution of the
// co-authorship networks (NetHEPT, HepPh) at small scale.
func BarabasiAlbert(n int32, mPerNode int, r *rng.RNG) *Graph {
	if n < 2 || mPerNode < 1 {
		panic("graph: BarabasiAlbert needs n >= 2, mPerNode >= 1")
	}
	// repeated-nodes list implements preferential attachment in O(1) per
	// endpoint pick.
	targets := make([]NodeID, 0, int(n)*mPerNode*2)
	b := NewBuilder(n)
	// Seed clique over the first mPerNode+1 nodes.
	seedN := NodeID(mPerNode + 1)
	if seedN > n {
		seedN = n
	}
	for u := NodeID(0); u < seedN; u++ {
		for v := u + 1; v < seedN; v++ {
			b.AddUndirected(u, v, 0, 0)
			targets = append(targets, u, v)
		}
	}
	chosen := make([]NodeID, 0, mPerNode)
	for u := seedN; u < n; u++ {
		chosen = chosen[:0]
		for len(chosen) < mPerNode {
			var v NodeID
			if len(targets) == 0 || r.Bool(0.05) {
				v = NodeID(r.Int31n(u)) // small uniform component keeps the graph connected-ish
			} else {
				v = targets[r.Intn(len(targets))]
			}
			if v == u || containsNode(chosen, v) {
				continue
			}
			chosen = append(chosen, v)
		}
		// Insertion order (not map order) keeps the generator fully
		// deterministic: the targets list below feeds future picks.
		for _, v := range chosen {
			b.AddUndirected(u, v, 0, 0)
			targets = append(targets, u, v)
		}
	}
	return b.Build()
}

func containsNode(s []NodeID, v NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// RMATParams holds the recursive-quadrant probabilities of the R-MAT
// (Kronecker-like) generator. They must be positive and sum to ~1. The
// classical "nice skew" setting is {0.57, 0.19, 0.19, 0.05}.
type RMATParams struct {
	A, B, C, D float64
}

// DefaultRMAT is the standard skewed parameterization used for the scaled
// social-network stand-ins.
var DefaultRMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// RMAT samples m arcs over n nodes (n rounded up to a power of two
// internally, ids > n-1 are rejected and resampled). If undirected is true,
// each sampled edge is expanded to both arcs.
func RMAT(n int32, m int64, p RMATParams, undirected bool, r *rng.RNG) *Graph {
	if n < 2 {
		panic("graph: RMAT needs n >= 2")
	}
	sum := p.A + p.B + p.C + p.D
	if sum <= 0 {
		panic("graph: RMAT params must be positive")
	}
	a, bb, c := p.A/sum, p.B/sum, p.C/sum
	levels := 0
	for (int32(1) << levels) < n {
		levels++
	}
	b := NewBuilder(n)
	// noise keeps the generated graph from being exactly self-similar,
	// which produces more realistic degree tails (cf. Chakrabarti et al.).
	for i := int64(0); i < m; i++ {
		var u, v int32
		for {
			u, v = 0, 0
			for l := 0; l < levels; l++ {
				x := r.Float64()
				switch {
				case x < a:
					// top-left: no bit set
				case x < a+bb:
					v |= 1 << l
				case x < a+bb+c:
					u |= 1 << l
				default:
					u |= 1 << l
					v |= 1 << l
				}
			}
			if u < n && v < n && u != v {
				break
			}
		}
		if undirected {
			b.AddUndirected(u, v, 0, 0)
		} else {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Path returns the directed path u0 -> u1 -> ... -> u_{n-1} with the given
// uniform edge parameters; used by the OSIM closed-form tests (Lemma 8/9).
func Path(n int32, p, phi float64) *Graph {
	b := NewBuilder(n)
	for u := NodeID(0); u+1 < n; u++ {
		b.AddEdgeP(u, u+1, p, phi)
	}
	g := b.Build()
	g.SetDefaultLTWeights()
	return g
}

// Cycle returns the directed cycle over n nodes.
func Cycle(n int32, p, phi float64) *Graph {
	if n < 2 {
		panic("graph: Cycle needs n >= 2")
	}
	b := NewBuilder(n)
	for u := NodeID(0); u < n; u++ {
		b.AddEdgeP(u, (u+1)%n, p, phi)
	}
	g := b.Build()
	g.SetDefaultLTWeights()
	return g
}

// Star returns a star with node 0 pointing to nodes 1..n-1.
func Star(n int32, p, phi float64) *Graph {
	b := NewBuilder(n)
	for v := NodeID(1); v < n; v++ {
		b.AddEdgeP(0, v, p, phi)
	}
	g := b.Build()
	g.SetDefaultLTWeights()
	return g
}

// Complete returns the complete directed graph on n nodes (every ordered
// pair). Only sensible for tiny n; used by exact-enumeration tests.
func Complete(n int32, p, phi float64) *Graph {
	b := NewBuilder(n)
	for u := NodeID(0); u < n; u++ {
		for v := NodeID(0); v < n; v++ {
			if u != v {
				b.AddEdgeP(u, v, p, phi)
			}
		}
	}
	g := b.Build()
	g.SetDefaultLTWeights()
	return g
}

// RandomTree returns a uniformly random out-tree rooted at node 0: each
// node v>0 picks a parent uniformly from 0..v-1. Edge parameters are
// uniform. EaSyIM score assignment is exact on such trees (paper
// Conclusion 2), which the property tests exploit.
func RandomTree(n int32, p, phi float64, r *rng.RNG) *Graph {
	b := NewBuilder(n)
	for v := NodeID(1); v < n; v++ {
		parent := NodeID(r.Int31n(v))
		b.AddEdgeP(parent, v, p, phi)
	}
	g := b.Build()
	g.SetDefaultLTWeights()
	return g
}

// RandomDAG returns a random DAG: for every pair u<v the arc (u,v) is
// present with probability density. Edge probability parameters are set
// uniformly to p.
func RandomDAG(n int32, density, p, phi float64, r *rng.RNG) *Graph {
	b := NewBuilder(n)
	for u := NodeID(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bool(density) {
				b.AddEdgeP(u, v, p, phi)
			}
		}
	}
	g := b.Build()
	g.SetDefaultLTWeights()
	return g
}

// LayeredBipartite builds the two-layer construction of the paper's
// Lemma 2 (Figure 3a): nx source nodes, each pointing at two dedicated
// targets, with p=1 everywhere, ϕ=1 on all but the last source's edges
// (ϕ=0 there), o=+1 on sources, o=0 on targets. The returned graph
// demonstrates that opinion spread is neither monotone nor submodular.
func LayeredBipartite(nx int32) *Graph {
	if nx < 2 {
		panic("graph: LayeredBipartite needs nx >= 2")
	}
	n := nx + 2*nx
	b := NewBuilder(n)
	for i := NodeID(0); i < nx; i++ {
		phi := 1.0
		if i == nx-1 {
			phi = 0.0
		}
		y1 := nx + 2*i
		y2 := nx + 2*i + 1
		b.AddEdgeP(i, y1, 1, phi)
		b.AddEdgeP(i, y2, 1, phi)
	}
	g := b.Build()
	for i := NodeID(0); i < nx; i++ {
		g.SetOpinion(i, 1)
	}
	g.SetDefaultLTWeights()
	return g
}

// SetCoverReduction builds the Theorem-1 construction (Figure 3b) from a
// set-cover instance: universe {0..nElems-1} and subsets. Layer 1 has one
// node per subset (o=0), layer 2 one node per element (o=1/n), layer 3
// nSubsets+nElems-2 nodes (o=-1/(2n)), plus a sink (o=-1+1/n). All edges
// have p=1, ϕ=1. Returns the graph and the ids of the layer-1 nodes.
func SetCoverReduction(nElems int, subsets [][]int) (*Graph, []NodeID) {
	nSub := len(subsets)
	if nSub == 0 || nElems == 0 {
		panic("graph: empty set-cover instance")
	}
	layer3 := nSub + nElems - 2
	if layer3 < 1 {
		layer3 = 1
	}
	n := int32(nSub + nElems + layer3 + 1)
	sink := n - 1
	b := NewBuilder(n)
	subsetNode := func(i int) NodeID { return NodeID(i) }
	elemNode := func(q int) NodeID { return NodeID(nSub + q) }
	zNode := func(i int) NodeID { return NodeID(nSub + nElems + i) }
	for i, sub := range subsets {
		for _, q := range sub {
			if q < 0 || q >= nElems {
				panic(fmt.Sprintf("graph: subset element %d out of range", q))
			}
			b.AddEdgeP(subsetNode(i), elemNode(q), 1, 1)
		}
	}
	for q := 0; q < nElems; q++ {
		for i := 0; i < layer3; i++ {
			b.AddEdgeP(elemNode(q), zNode(i), 1, 1)
		}
	}
	for i := 0; i < layer3; i++ {
		b.AddEdgeP(zNode(i), sink, 1, 1)
	}
	g := b.Build()
	nf := float64(nElems)
	for i := 0; i < nSub; i++ {
		g.SetOpinion(subsetNode(i), 0)
	}
	for q := 0; q < nElems; q++ {
		g.SetOpinion(elemNode(q), 1/nf)
	}
	for i := 0; i < layer3; i++ {
		g.SetOpinion(zNode(i), -1/(2*nf))
	}
	g.SetOpinion(sink, -1+1/nf)
	g.SetDefaultLTWeights()
	seeds := make([]NodeID, nSub)
	for i := range seeds {
		seeds[i] = subsetNode(i)
	}
	return g, seeds
}

// ExampleFigure1 builds the 4-node Twitter snapshot of the paper's
// Figure 1 / Examples 1-2: nodes A=0, B=1, C=2, D=3.
func ExampleFigure1() *Graph {
	const (
		A NodeID = 0
		B NodeID = 1
		C NodeID = 2
		D NodeID = 3
	)
	b := NewBuilder(4)
	b.AddEdgeP(B, A, 0.1, 0.7)
	b.AddEdgeP(B, C, 0.1, 0.8)
	b.AddEdgeP(A, D, 0.8, 0.9)
	b.AddEdgeP(C, D, 0.9, 0.1)
	g := b.Build()
	g.SetOpinion(A, 0.8)
	g.SetOpinion(B, 0)
	g.SetOpinion(C, 0.6)
	g.SetOpinion(D, -0.3)
	g.SetDefaultLTWeights()
	return g
}
