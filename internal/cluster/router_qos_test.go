package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/holisticim/holisticim/internal/admission"
	"github.com/holisticim/holisticim/internal/service"
)

// shedReplica is a fake imserver that answers health polls ready and
// sheds every POST with 429 + its own Retry-After hint, recording the
// requests it saw.
type shedReplica struct {
	ts   *httptest.Server
	hint int

	mu   sync.Mutex
	hits int
	hdrs []http.Header
}

func newShedReplica(t *testing.T, hint int, status int) *shedReplica {
	t.Helper()
	sr := &shedReplica{hint: hint}
	sr.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cluster/info" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"ready":true}`))
			return
		}
		sr.mu.Lock()
		sr.hits++
		sr.hdrs = append(sr.hdrs, r.Header.Clone())
		sr.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(sr.hint))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(service.ErrorResponse{Error: service.ErrorBody{
			Code: "too_many_requests", Message: "job queue full",
		}})
	}))
	t.Cleanup(sr.ts.Close)
	return sr
}

func shedRouter(t *testing.T, cfg RouterConfig, reps ...*shedReplica) *httptest.Server {
	t.Helper()
	for _, r := range reps {
		cfg.Replicas = append(cfg.Replicas, r.ts.URL)
	}
	if cfg.HedgeDelay == 0 {
		// Keep the hedge timer out of the picture: every extra launch in
		// these tests must be a shed-triggered failover, not a hedge.
		cfg.HedgeDelay = 10 * time.Second
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.PollOnce(context.Background())
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return front
}

func postSelect(t *testing.T, front *httptest.Server, hdr map[string]string) *http.Response {
	t.Helper()
	body := `{"graph":"soc","algorithm":"imm","k":2}`
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/select", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRouterShedCapSurfacesMaxRetryAfter: when every owner sheds, the
// router must stop after 1+ShedRetries candidates — NOT hedge through
// the whole owner set — and surface the largest Retry-After it saw.
func TestRouterShedCapSurfacesMaxRetryAfter(t *testing.T) {
	reps := []*shedReplica{
		newShedReplica(t, 2, http.StatusTooManyRequests),
		newShedReplica(t, 9, http.StatusTooManyRequests),
		newShedReplica(t, 5, http.StatusTooManyRequests),
	}
	front := shedRouter(t, RouterConfig{Replication: 3, ShedRetries: 1}, reps...)

	resp := postSelect(t, front, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	total, wantRA := 0, 0
	for _, r := range reps {
		r.mu.Lock()
		if r.hits > 0 && r.hint > wantRA {
			wantRA = r.hint
		}
		total += r.hits
		r.mu.Unlock()
	}
	if total != 2 {
		t.Fatalf("candidates tried = %d, want 2 (1 + ShedRetries)", total)
	}
	got, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || got != wantRA {
		t.Fatalf("Retry-After = %q, want %d (largest hint among contacted replicas)",
			resp.Header.Get("Retry-After"), wantRA)
	}
	var env service.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Error.Code != "too_many_requests" {
		t.Fatalf("error.code = %q, want too_many_requests", env.Error.Code)
	}
}

// TestRouterShedRetriesDisabled: a negative ShedRetries means the first
// 429 is final — exactly one replica is contacted.
func TestRouterShedRetriesDisabled(t *testing.T) {
	reps := []*shedReplica{
		newShedReplica(t, 3, http.StatusTooManyRequests),
		newShedReplica(t, 7, http.StatusTooManyRequests),
	}
	front := shedRouter(t, RouterConfig{Replication: 2, ShedRetries: -1}, reps...)

	resp := postSelect(t, front, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	total := 0
	for _, r := range reps {
		r.mu.Lock()
		total += r.hits
		r.mu.Unlock()
	}
	if total != 1 {
		t.Fatalf("candidates tried = %d, want 1 (failover on 429 disabled)", total)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response lost its Retry-After")
	}
}

// TestRouterShedThenSuccess: one shed inside the budget still fails
// over, and a healthy candidate's success wins as before.
func TestRouterShedThenSuccess(t *testing.T) {
	shedder := newShedReplica(t, 4, http.StatusTooManyRequests)
	okRep := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cluster/info" {
			_, _ = w.Write([]byte(`{"ready":true}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"state":"done"}`))
	}))
	t.Cleanup(okRep.Close)

	// Both orderings are possible depending on rendezvous ranking; in
	// either the client must end with the 200.
	rt, err := NewRouter(RouterConfig{
		Replicas:    []string{shedder.ts.URL, okRep.URL},
		Replication: 2,
		ShedRetries: 1,
		HedgeDelay:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.PollOnce(context.Background())
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	resp := postSelect(t, front, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (shed inside budget fails over)", resp.StatusCode)
	}
}

// TestRouterForwardsQoSHeaders: the router must stamp the ORIGINAL
// client's identity and priority wish on upstream requests — otherwise
// every replica would rate-limit the router's own address as one giant
// client and priority wishes would be lost at the first hop.
func TestRouterForwardsQoSHeaders(t *testing.T) {
	rep := newShedReplica(t, 1, http.StatusTooManyRequests)
	front := shedRouter(t, RouterConfig{Replication: 1, ShedRetries: -1}, rep)

	postSelect(t, front, map[string]string{
		admission.ClientIDHeader: "alice",
		admission.PriorityHeader: "batch",
	})
	postSelect(t, front, nil)

	rep.mu.Lock()
	defer rep.mu.Unlock()
	if len(rep.hdrs) != 2 {
		t.Fatalf("replica saw %d requests, want 2", len(rep.hdrs))
	}
	if got := rep.hdrs[0].Get(admission.ClientIDHeader); got != "alice" {
		t.Fatalf("X-Client-ID = %q, want alice", got)
	}
	if got := rep.hdrs[0].Get(admission.PriorityHeader); got != "batch" {
		t.Fatalf("X-Priority = %q, want batch", got)
	}
	if rep.hdrs[0].Get("X-Request-ID") == "" {
		t.Fatal("upstream request lost its X-Request-ID")
	}
	// No X-Client-ID header: the router identifies the client by its
	// remote address, so replicas still bucket per end client.
	if got := rep.hdrs[1].Get(admission.ClientIDHeader); got == "" {
		t.Fatal("anonymous client forwarded with empty X-Client-ID; want remote-address identity")
	}
	if got := rep.hdrs[1].Get(admission.PriorityHeader); got != "" {
		t.Fatalf("no priority wish sent, but upstream saw X-Priority=%q", got)
	}
}
