package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/ris"
)

// manifestFile is the store's table-of-contents file name.
const manifestFile = "manifest.json"

// Store is a shared snapshot directory replicas warm-load from:
//
//	<dir>/manifest.json
//	<dir>/graphs/<name>-<fingerprint>.himg
//	<dir>/sketches/<mangled id>-<fingerprint>.hims
//
// Artifact files are immutable once published — the fingerprint in the
// name pins the content — and every write lands via temp-file +
// atomic rename, so concurrent readers never observe a torn file. The
// store assumes ONE logical publisher (a build pipeline or operator);
// replicas only read. Artifacts of a superseded fingerprint are left on
// disk for replicas still warm-loading the previous manifest.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a snapshot store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "graphs"), filepath.Join(dir, "sketches")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("cluster: open store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Manifest reads the current manifest (empty, version 0, before the
// first publish).
func (s *Store) Manifest() (Manifest, error) {
	return readManifest(filepath.Join(s.dir, manifestFile))
}

// Path resolves a manifest entry's relative file to an absolute path.
func (s *Store) Path(file string) string { return filepath.Join(s.dir, file) }

// mangle makes an artifact id filesystem-safe (sketch ids contain ':').
func mangle(id string) string {
	return strings.NewReplacer(":", "_", "/", "_").Replace(id)
}

// writeArtifact writes one immutable artifact via temp + rename and
// returns its path relative to the store root.
func (s *Store) writeArtifact(subdir, name string, write func(f *os.File) error) (string, error) {
	rel := filepath.Join(subdir, name)
	final := filepath.Join(s.dir, rel)
	tmp, err := os.CreateTemp(filepath.Join(s.dir, subdir), "."+name+"-*.tmp")
	if err != nil {
		return "", fmt.Errorf("cluster: write artifact: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return "", fmt.Errorf("cluster: write artifact %s: %w", rel, err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("cluster: write artifact %s: %w", rel, err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("cluster: publish artifact %s: %w", rel, err)
	}
	return rel, nil
}

// updateManifest applies mutate to the current manifest, bumps the
// version and publishes the result atomically.
func (s *Store) updateManifest(mutate func(m *Manifest)) (Manifest, error) {
	path := filepath.Join(s.dir, manifestFile)
	m, err := readManifest(path)
	if err != nil {
		return Manifest{}, err
	}
	mutate(&m)
	m.Version++
	if err := writeManifest(path, &m); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// PublishGraph writes g's binary snapshot into the store and records it
// in the manifest under name (replacing any previous entry for the
// name). version is the graph's mutation-log version, carried so
// replicas and routers can reason about sketch staleness against it.
func (s *Store) PublishGraph(name string, g *holisticim.Graph, version uint64) (ManifestGraph, error) {
	if name == "" {
		return ManifestGraph{}, fmt.Errorf("cluster: empty graph name")
	}
	if g == nil {
		return ManifestGraph{}, fmt.Errorf("cluster: nil graph")
	}
	fp := fmt.Sprintf("%016x", g.Fingerprint())
	rel, err := s.writeArtifact("graphs", fmt.Sprintf("%s-%s.himg", mangle(name), fp), func(f *os.File) error {
		return holisticim.WriteBinaryGraph(f, g)
	})
	if err != nil {
		return ManifestGraph{}, err
	}
	entry := ManifestGraph{Name: name, File: rel, Fingerprint: fp, Version: version}
	_, err = s.updateManifest(func(m *Manifest) {
		for i := range m.Graphs {
			if m.Graphs[i].Name == name {
				m.Graphs[i] = entry
				return
			}
		}
		m.Graphs = append(m.Graphs, entry)
	})
	return entry, err
}

// semanticsOf maps an index's RR kind to the registry semantics key the
// serving layer uses ("ic", "lt", "oc").
func semanticsOf(kind ris.ModelKind) string {
	switch kind {
	case ris.ModelLT:
		return "lt"
	case ris.ModelOC:
		return "oc"
	default:
		return "ic"
	}
}

// SketchIDOf is the canonical sketch identifier the serving registry
// keys indexes by; the store reuses it so a manifest entry names the
// exact registry slot a replica will load it into.
func SketchIDOf(graph, semantics string, epsilon float64, seed uint64) string {
	return fmt.Sprintf("%s:%s:e%g:s%d", graph, semantics, epsilon, seed)
}

// PublishSketch writes idx's snapshot into the store and records it in
// the manifest, keyed to graphName and the sketch's own parameters. The
// manifest entry pins the graph fingerprint the sample was built over;
// the usual flow publishes the graph first and the sketch immediately
// after, so one manifest version carries a coherent (graph, sketch)
// pair.
func (s *Store) PublishSketch(graphName string, idx *holisticim.Sketch) (ManifestSketch, error) {
	if idx == nil {
		return ManifestSketch{}, fmt.Errorf("cluster: nil sketch")
	}
	p := idx.Params()
	sem := semanticsOf(p.Kind)
	id := SketchIDOf(graphName, sem, p.Epsilon, p.Seed)
	fp := fmt.Sprintf("%016x", idx.GraphFingerprint())
	rel, err := s.writeArtifact("sketches", fmt.Sprintf("%s-%s.hims", mangle(id), fp), func(f *os.File) error {
		return holisticim.WriteSketch(f, idx)
	})
	if err != nil {
		return ManifestSketch{}, err
	}
	entry := ManifestSketch{
		ID:               id,
		Graph:            graphName,
		Model:            sem,
		Epsilon:          p.Epsilon,
		Seed:             p.Seed,
		File:             rel,
		GraphFingerprint: fp,
		GraphVersion:     idx.GraphVersion(),
	}
	_, err = s.updateManifest(func(m *Manifest) {
		for i := range m.Sketches {
			if m.Sketches[i].ID == id {
				m.Sketches[i] = entry
				return
			}
		}
		m.Sketches = append(m.Sketches, entry)
	})
	return entry, err
}

// RemoveSketch drops a sketch entry from the manifest (the artifact file
// stays for replicas mid-load of an older manifest). Watchers evict the
// sketch from their registries on the next sync.
func (s *Store) RemoveSketch(id string) error {
	_, err := s.updateManifest(func(m *Manifest) {
		out := m.Sketches[:0]
		for _, e := range m.Sketches {
			if e.ID != id {
				out = append(out, e)
			}
		}
		m.Sketches = out
	})
	return err
}
