package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/service"
)

// handleQuery serves POST /v2/query at the router. Sketch-served select
// batches are SCATTERED: each member goes to its preferred owner in
// parallel and the answers merge back into one batch response. Anything
// else — single members, estimates, cold algorithms, batches the
// cluster holds no matching sketch for — routes whole to the key's
// primary owner with hedged failover, which preserves the replica-side
// planner's batch semantics (a cold batch shares one RR collection; the
// plan says so, and splitting it would both waste kmax-sized work per
// member and change the plan's wording).
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req service.QueryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}

	task := req.Task
	if task == "" {
		if len(req.SeedSets) > 0 || req.Seeds != nil {
			task = string(holisticim.TaskEstimate)
		} else {
			task = string(holisticim.TaskSelect)
		}
	}
	opinionAware := task == string(holisticim.TaskEstimate) &&
		(req.Objective == string(holisticim.ObjectiveOpinion) || holisticim.ModelKind(req.Options.Model).OpinionAware())
	resolved := holisticim.Options{
		Model:   holisticim.ModelKind(req.Options.Model),
		Epsilon: req.Options.Epsilon,
		Seed:    req.Options.Seed,
	}.Resolved(opinionAware)
	semantics := resolved.Model.RRSemantics()
	key := QueryKey(req.Graph, semantics, resolved.Epsilon)

	if rt.scatterEligible(req, task, semantics, resolved) {
		if rt.scatterQuery(w, r, req, key) {
			rt.rm.scatters.Inc()
			return
		}
		// Scatter aborted (a member came back cold or a replica refused):
		// the whole query goes to one owner, which is always correct.
		rt.rm.scatterAborts.Inc()
	}
	rt.routeBody(w, r, key, body)
}

// scatterEligible predicts whether every member of the batch will be
// sketch-served: a select batch on an RIS algorithm with a matching
// sketch loaded somewhere in the cluster. The prediction is cheap and
// safe — scatterQuery verifies each member's answer really was
// sketch-served and aborts to whole-query routing otherwise.
func (rt *Router) scatterEligible(req service.QueryRequest, task, semantics string, resolved holisticim.Options) bool {
	if task != string(holisticim.TaskSelect) || len(req.Ks) < 2 {
		return false
	}
	switch holisticim.Algorithm(req.Algorithm) {
	case holisticim.AlgTIMPlus, holisticim.AlgIMM:
	default:
		return false
	}
	if req.Options.TIMThetaCap != 0 {
		return false // a θ cap opts out of sketches on the replica side
	}
	return rt.mem.hasSketch(req.Graph, semantics, resolved.Epsilon, resolved.Seed)
}

// memberOutcome is one scattered member's result.
type memberOutcome struct {
	member service.QueryMember
	step   holisticim.PlanStep
	ok     bool
}

// scatterQuery fans the batch's members out to their owners and merges
// the answers. Returns false (nothing written) when any member could
// not be served from a sketch synchronously — the caller then routes
// the whole query to one replica instead.
//
// The sub-request shapes are chosen to reproduce the single-node batch
// answer byte-for-byte: a member at k == max(ks) becomes a single-k
// query (the full-selection path with certified θ metrics — exactly
// what SelectPrefixes gives the kmax member), and a member at k <
// max(ks) becomes a two-member batch [k, kmax] whose first member is
// the same greedy prefix, with the same prefix metrics, that the
// original batch would produce. Sketch plan steps do not mention batch
// size, so re-indexing Member is the only merge-side edit needed.
func (rt *Router) scatterQuery(w http.ResponseWriter, r *http.Request, req service.QueryRequest, key string) bool {
	ks := req.Ks
	kmax := 0
	for _, k := range ks {
		if k > kmax {
			kmax = k
		}
	}
	owners, note := rt.mem.rank(key, rt.cfg.Replication)
	if len(owners) == 0 {
		return false
	}

	start := time.Now()
	outcomes := make([]memberOutcome, len(ks))
	var wg sync.WaitGroup
	for i, k := range ks {
		wg.Add(1)
		go func(i, k int) {
			defer wg.Done()
			outcomes[i] = rt.scatterMember(r, req, k, kmax, rotated(owners, i))
		}(i, k)
	}
	wg.Wait()

	steps := make([]holisticim.PlanStep, len(ks))
	members := make([]service.QueryMember, len(ks))
	seedsDone := 0
	for i, out := range outcomes {
		if !out.ok {
			return false
		}
		out.step.Member = i
		steps[i] = out.step
		members[i] = out.member
		if out.member.Result != nil && len(out.member.Result.Seeds) > seedsDone {
			seedsDone = len(out.member.Result.Seeds)
		}
	}
	plan := service.Plan{Steps: steps}
	answer := &service.QueryAnswer{
		Task:    string(holisticim.TaskSelect),
		Plan:    plan,
		Members: members,
		TookMS:  float64(time.Since(start)) / float64(time.Millisecond),
	}
	w.Header().Set("X-Router-Scatter", "1")
	if note != "" {
		w.Header().Set("X-Router-Note", note)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(service.QueryResponse{
		State: service.StateDone, Sketch: true, Plan: &plan,
		SeedsDone: seedsDone, Members: len(members), MembersDone: len(members),
		Answer: answer,
	})
	return true
}

// rotated shifts candidates by i so member i prefers owner i mod N —
// that is what actually spreads a batch across the owner set — while
// keeping every other candidate as failover.
func rotated(candidates []string, i int) []string {
	n := len(candidates)
	if n == 0 {
		return nil
	}
	off := i % n
	out := make([]string, 0, n)
	out = append(out, candidates[off:]...)
	out = append(out, candidates[:off]...)
	return out
}

// scatterMember runs one member's sub-query against its candidate
// replicas and validates that it was served synchronously from a
// sketch. A replica that answers 202 instead created a cold job — the
// job is canceled (best effort) and the scatter aborts.
func (rt *Router) scatterMember(r *http.Request, req service.QueryRequest, k, kmax int, candidates []string) memberOutcome {
	sub := req
	if k == kmax {
		sub.K = kmax
		sub.Ks = nil
	} else {
		sub.K = 0
		sub.Ks = []int{k, kmax}
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return memberOutcome{}
	}
	res, err := rt.tryCandidates(r.Context(), candidates, http.MethodPost, "/v2/query", body, "application/json")
	if err != nil || res == nil {
		return memberOutcome{}
	}
	var qr service.QueryResponse
	if uerr := json.Unmarshal(res.body, &qr); uerr != nil {
		return memberOutcome{}
	}
	if res.status == http.StatusAccepted && qr.JobID != "" {
		// The replica planned a cold job for this member — abort the
		// scatter and free the worker slot we just occupied.
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, _ = rt.forward(ctx, res.replica, http.MethodDelete, "/v2/jobs/"+qr.JobID, nil, "")
		}()
		return memberOutcome{}
	}
	if res.status != http.StatusOK || qr.State != service.StateDone || !qr.Sketch ||
		qr.Answer == nil || len(qr.Answer.Members) == 0 || len(qr.Answer.Plan.Steps) == 0 {
		return memberOutcome{}
	}
	return memberOutcome{member: qr.Answer.Members[0], step: qr.Answer.Plan.Steps[0], ok: true}
}
