package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingOrderIndependent(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"})
	b := NewRing([]string{"http://c", "http://a", "http://b"})
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("graph%d:ic:e0.1:s0", i)
		if got, want := a.Owners(key, 0), b.Owners(key, 0); !reflect.DeepEqual(got, want) {
			t.Fatalf("key %q: owner order differs across configuration orders: %v vs %v", key, got, want)
		}
	}
}

func TestRingOwnersCapped(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"})
	if got := r.Owners("k", 2); len(got) != 2 {
		t.Fatalf("Owners(k,2) = %v, want 2 entries", got)
	}
	if got := r.Owners("k", 0); len(got) != 4 {
		t.Fatalf("Owners(k,0) = %v, want all 4", got)
	}
	if got := r.Owners("k", 99); len(got) != 4 {
		t.Fatalf("Owners(k,99) = %v, want all 4", got)
	}
}

// Removing a replica must only remove it from each key's owner list —
// the relative order of the survivors is unchanged (the minimal-movement
// property that makes rendezvous hashing safe to fail over on).
func TestRingMinimalMovementOnRemoval(t *testing.T) {
	full := NewRing([]string{"a", "b", "c", "d"})
	reduced := NewRing([]string{"a", "b", "d"})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		var filtered []string
		for _, rep := range full.Owners(key, 0) {
			if rep != "c" {
				filtered = append(filtered, rep)
			}
		}
		if got := reduced.Owners(key, 0); !reflect.DeepEqual(got, filtered) {
			t.Fatalf("key %q: removal reshuffled survivors: %v vs %v", key, got, filtered)
		}
	}
}

// Every replica should be SOME key's primary — rendezvous hashing
// balances keys across the set.
func TestRingSpreadsPrimaries(t *testing.T) {
	replicas := []string{"r0", "r1", "r2"}
	r := NewRing(replicas)
	counts := make(map[string]int)
	const keys = 300
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("graph-%d:ic:e0.1:s0", i), 1)[0]]++
	}
	for _, rep := range replicas {
		if counts[rep] == 0 {
			t.Fatalf("replica %s owns no keys out of %d: %v", rep, keys, counts)
		}
		// Loose balance bound: no replica hoards more than 60% of keys.
		if counts[rep] > keys*6/10 {
			t.Fatalf("replica %s owns %d/%d keys — badly skewed: %v", rep, counts[rep], keys, counts)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil)
	if got := r.Owners("k", 3); got != nil {
		t.Fatalf("empty ring owners = %v, want nil", got)
	}
}

// QueryKey must be seed-independent (queries differing only in sampling
// seed share sketch-family affinity) but distinguish graph, semantics
// and epsilon.
func TestQueryKey(t *testing.T) {
	base := QueryKey("soc", "ic", 0.1)
	if QueryKey("soc", "ic", 0.1) != base {
		t.Fatal("QueryKey not deterministic")
	}
	for _, other := range []string{
		QueryKey("hep", "ic", 0.1),
		QueryKey("soc", "lt", 0.1),
		QueryKey("soc", "ic", 0.2),
	} {
		if other == base {
			t.Fatalf("QueryKey collision: %q", other)
		}
	}
	if base != SketchIDOf("soc", "ic", 0.1, 0) {
		t.Fatalf("QueryKey %q does not align with the sketch id family", base)
	}
}
