package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/admission"
	"github.com/holisticim/holisticim/internal/obs"
	"github.com/holisticim/holisticim/internal/service"
)

// RouterConfig sizes a Router. Replicas is required; everything else
// has serving defaults.
type RouterConfig struct {
	// Replicas are the imserver base URLs ("http://host:port").
	Replicas []string
	// Replication is how many rendezvous owners each key prefers before
	// spilling to arbitrary healthy replicas (default 2, clamped to the
	// replica count).
	Replication int
	// PollInterval paces the health poller (default 1s).
	PollInterval time.Duration
	// HedgeDelay is how long a routed request waits on one replica before
	// ALSO trying the next candidate — the first success wins (default
	// 250ms).
	HedgeDelay time.Duration
	// Retries bounds the extra replicas tried after the first, the
	// failover retry budget (default: all remaining candidates).
	Retries int
	// ShedRetries caps the extra candidates tried after a replica sheds
	// load (429). Unlike a hard failure, a shedding replica is healthy —
	// its queue is full or the deadline can't be met — and under cluster-
	// wide overload failing over to every owner multiplies the load that
	// caused the shedding. After the cap the 429 is surfaced to the
	// client, carrying the LARGEST Retry-After seen across the shed
	// responses. Default 1; negative disables failover on 429 entirely.
	ShedRetries int
	// Client issues upstream requests (default: 30s-timeout client).
	Client *http.Client
	// Metrics receives the router's metric families and backs GET
	// /metrics (default: a private registry).
	Metrics *obs.Registry
	// Logger receives structured request and health-transition logs
	// (default: discard).
	Logger *slog.Logger
}

// Router is the cluster's scatter-gather front door: it consistent-
// hashes queries onto healthy replicas, proxies the /v1 and /v2
// surfaces, fans batch-query members out to their owners and merges the
// answers, and hedges/fails over on slow or shedding replicas.
type Router struct {
	cfg     RouterConfig
	client  *http.Client
	mem     *membership
	mux     *http.ServeMux
	metrics *obs.Registry
	logger  *slog.Logger
	rm      routerMetrics

	patterns []string
}

// jobIDSep separates the replica index prefix from the replica-local
// job id in router-issued job ids ("r2-j15").
const jobIDSep = "-"

// NewRouter builds a router over the given replicas. Call Run (or
// PollOnce) to populate health state before serving.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one replica")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Replication > len(cfg.Replicas) {
		cfg.Replication = len(cfg.Replicas)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = 250 * time.Millisecond
	}
	if cfg.Retries <= 0 {
		cfg.Retries = len(cfg.Replicas)
	}
	if cfg.ShedRetries == 0 {
		cfg.ShedRetries = 1
	}
	if cfg.ShedRetries < 0 {
		cfg.ShedRetries = 0
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	rt := &Router{
		cfg:     cfg,
		client:  cfg.Client,
		mem:     newMembership(cfg.Replicas, cfg.Client, cfg.PollInterval),
		metrics: cfg.Metrics,
		logger:  cfg.Logger,
	}
	if rt.metrics == nil {
		rt.metrics = obs.NewRegistry()
	}
	if rt.logger == nil {
		rt.logger = obs.Nop()
	}
	rt.mem.logger = rt.logger
	rt.initObservability()
	rt.mux = http.NewServeMux()
	rt.routes()
	return rt, nil
}

// PollOnce refreshes replica health synchronously (tests and startup).
func (rt *Router) PollOnce(ctx context.Context) { rt.mem.PollOnce(ctx) }

// Run polls replica health until ctx ends.
func (rt *Router) Run(ctx context.Context) { rt.mem.Run(ctx) }

// Handler returns the router's root handler with the same uniform 404
// envelope the replicas use, behind the obs middleware — the router is
// the outermost hop, so it is where request ids are minted before
// forward propagates them replica-ward.
func (rt *Router) Handler() http.Handler {
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pattern := rt.mux.Handler(r); pattern == "" {
			writeError(w, http.StatusNotFound, "no route for %s %s", r.Method, r.URL.Path)
			return
		}
		rt.mux.ServeHTTP(w, withQoS(r))
	})
	mw := obs.HTTPConfig{
		Logger:   rt.logger,
		Registry: rt.metrics,
		Route:    rt.routeLabel,
		Quiet:    []string{"/healthz", "/readyz", "/metrics"},
	}
	return mw.Middleware(root)
}

// routeLabel maps a request onto its mux pattern's path for the
// bounded route label of the request metrics.
func (rt *Router) routeLabel(r *http.Request) string {
	_, pattern := rt.mux.Handler(r)
	if pattern == "" {
		return ""
	}
	if _, path, ok := strings.Cut(pattern, " "); ok {
		return path
	}
	return pattern
}

// Routes returns the registered patterns, sorted.
func (rt *Router) Routes() []string {
	out := append([]string(nil), rt.patterns...)
	sort.Strings(out)
	return out
}

func (rt *Router) handle(pattern string, h http.HandlerFunc) {
	rt.mux.HandleFunc(pattern, h)
	rt.patterns = append(rt.patterns, pattern)
}

func (rt *Router) routes() {
	rt.handle("GET /healthz", rt.handleHealthz)
	rt.handle("GET /readyz", rt.handleReadyz)
	rt.handle("GET /metrics", rt.handleMetrics)
	rt.handle("GET /v1/cluster/info", rt.handleClusterInfo)

	rt.handle("POST /v2/query", rt.handleQuery)
	rt.handle("GET /v2/jobs/{id}", rt.jobRouted("/v2/jobs/"))
	rt.handle("DELETE /v2/jobs/{id}", rt.jobRouted("/v2/jobs/"))
	rt.handle("GET /v2/jobs/{id}/events", rt.handleJobEvents)

	rt.handle("POST /v1/select", rt.handleSelect)
	rt.handle("POST /v1/estimate", rt.handleEstimate)
	rt.handle("GET /v1/jobs/{id}", rt.jobRouted("/v1/jobs/"))
	rt.handle("DELETE /v1/jobs/{id}", rt.jobRouted("/v1/jobs/"))

	rt.handle("GET /v1/graphs", rt.fanListMerge("/v1/graphs", "graphs", "name"))
	rt.handle("GET /v1/sketches", rt.fanListMerge("/v1/sketches", "sketches", "id"))
	rt.handle("GET /v1/graphs/{name}", rt.handleGraphStats)
	rt.handle("GET /v1/sketches/{id}", rt.handleSketchInfo)
	rt.handle("GET /v1/stats", rt.handleStats)

	rt.handle("POST /v1/graphs", rt.fanAll)
	rt.handle("POST /v1/sketches", rt.fanAll)
	rt.handle("POST /v1/graphs/{name}/edges", rt.fanAll)
	rt.handle("DELETE /v1/sketches/{id}", rt.fanAll)
}

// writeError mirrors the replicas' uniform error envelope, through the
// same status→code mapping (obs.ErrorCode) and with the middleware-
// assigned request id echoed, so a router-originated error is
// indistinguishable in shape from a replica one.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(service.ErrorResponse{Error: service.ErrorBody{
		Code:      obs.ErrorCode(status),
		Message:   fmt.Sprintf(format, args...),
		RequestID: w.Header().Get(obs.RequestIDHeader),
	}})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte("{\"status\":\"ok\"}\n"))
}

// handleReadyz: the router is ready when it can route somewhere.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if len(rt.mem.healthy()) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no healthy replica")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte("{\"status\":\"ready\"}\n"))
}

// handleClusterInfo serves the router's cluster view: per-replica health
// and self-descriptions plus the cluster-wide manifest high-water mark.
func (rt *Router) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	view := struct {
		ManifestVersion uint64                  `json:"manifest_version"`
		Replicas        map[string]replicaState `json:"replicas"`
	}{
		ManifestVersion: rt.mem.maxManifestVersion(),
		Replicas:        rt.mem.snapshot(),
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(view)
}

// upstreamResult is one replica's buffered response.
type upstreamResult struct {
	replica string
	status  int
	header  http.Header
	body    []byte
}

// retryable reports whether a status should fail over to the next
// candidate: shedding (429), server errors and upstream unavailability.
// Client errors (400/404/409...) are authoritative — every replica
// would answer the same. 429s additionally respect the ShedRetries cap
// in tryCandidates — a shedding replica is healthy, so hammering the
// whole owner set with its traffic only deepens the overload.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// qosCtxKey carries the original client's identity and priority wish
// from the router's front door to every upstream request it spawns.
type qosCtxKey int

const (
	ctxClientID qosCtxKey = iota
	ctxPriorityWish
)

// withQoS resolves the inbound request's client identity (its
// X-Client-ID header, else its remote address) and priority wish onto
// the context, so upstream requests — issued far from the original
// *http.Request — can stamp them. Without this, every replica would
// see the ROUTER's address as the client and one bucket would throttle
// the whole cluster's traffic.
func withQoS(r *http.Request) *http.Request {
	ctx := context.WithValue(r.Context(), ctxClientID, admission.ClientID(r))
	if wish := r.Header.Get(admission.PriorityHeader); wish != "" {
		ctx = context.WithValue(ctx, ctxPriorityWish, wish)
	}
	return r.WithContext(ctx)
}

// stampUpstreamHeaders copies the request id, client identity and
// priority wish riding ctx onto an upstream request, so a replica's
// log lines, rate-limit bucket and service class all match what the
// router saw at the front door.
func stampUpstreamHeaders(ctx context.Context, h http.Header) {
	if rid := obs.RequestID(ctx); rid != "" {
		h.Set(obs.RequestIDHeader, rid)
	}
	if cid, _ := ctx.Value(ctxClientID).(string); cid != "" {
		h.Set(admission.ClientIDHeader, cid)
	}
	if wish, _ := ctx.Value(ctxPriorityWish).(string); wish != "" {
		h.Set(admission.PriorityHeader, wish)
	}
}

// forward issues one upstream request and buffers the response. The
// request id riding ctx (set by the router's middleware) is propagated
// on the X-Request-ID header, so a replica's log lines carry the same
// id as the router's — one grep follows a request across the cluster.
// The client id and priority wish ride along the same way, so per-
// client rate limits and priority classes apply to the true client.
func (rt *Router) forward(ctx context.Context, replica, method, path string, body []byte, contentType string) (*upstreamResult, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, replica+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	stampUpstreamHeaders(ctx, req.Header)
	start := time.Now()
	resp, err := rt.client.Do(req)
	rt.rm.proxyDur.With(replica).Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &upstreamResult{replica: replica, status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// retryAfterSeconds parses the integral-seconds Retry-After the
// serving layer emits (0 when absent or malformed).
func retryAfterSeconds(h http.Header) int {
	s, err := strconv.Atoi(strings.TrimSpace(h.Get("Retry-After")))
	if err != nil || s < 0 {
		return 0
	}
	return s
}

// applyMaxRetryAfter stamps the largest Retry-After observed across
// shed responses onto the result surfaced to the client: when several
// owners refused with different hints, retrying before the LARGEST one
// would just be shed again by the slowest.
func applyMaxRetryAfter(res *upstreamResult, maxSeconds int) {
	if maxSeconds <= 0 {
		return
	}
	if res.header == nil {
		res.header = http.Header{}
	}
	res.header.Set("Retry-After", strconv.Itoa(maxSeconds))
}

// tryCandidates runs the request against candidates with hedged
// failover: candidate 0 starts immediately; every HedgeDelay without a
// verdict the next candidate starts in parallel; the first
// non-retryable response wins and the losers are canceled. At most
// 1+Retries candidates are attempted, and at most 1+ShedRetries when
// the refusals are 429 load sheds — after the shed budget the 429 is
// returned with the largest Retry-After seen, instead of multiplying
// an overloaded owner set's load. Returns the winning result, or the
// last retryable/erroneous outcome when every candidate failed.
func (rt *Router) tryCandidates(ctx context.Context, candidates []string, method, path string, body []byte, contentType string) (*upstreamResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("no healthy replica")
	}
	if max := 1 + rt.cfg.Retries; len(candidates) > max {
		candidates = candidates[:max]
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		res *upstreamResult
		err error
	}
	results := make(chan outcome, len(candidates))
	launched := 0
	launch := func() {
		replica := candidates[launched]
		launched++
		go func() {
			res, err := rt.forward(ctx, replica, method, path, body, contentType)
			select {
			case results <- outcome{res, err}:
			case <-ctx.Done():
			}
		}()
	}
	launch()

	var last outcome
	pending := 1
	sheds, maxRetryAfter := 0, 0
	hedge := time.NewTimer(rt.cfg.HedgeDelay)
	defer hedge.Stop()
	for pending > 0 || launched < len(candidates) {
		select {
		case <-ctx.Done():
			if last.res != nil || last.err != nil {
				return last.res, last.err
			}
			return nil, ctx.Err()
		case <-hedge.C:
			if launched < len(candidates) {
				launch()
				pending++
				rt.rm.hedges.Inc()
			}
			hedge.Reset(rt.cfg.HedgeDelay)
		case out := <-results:
			pending--
			last = out
			if out.err == nil && !retryable(out.res.status) {
				return out.res, nil
			}
			if out.err == nil && out.res.status == http.StatusTooManyRequests {
				sheds++
				if ra := retryAfterSeconds(out.res.header); ra > maxRetryAfter {
					maxRetryAfter = ra
				}
				if sheds > rt.cfg.ShedRetries {
					// Shed budget spent: surface the overload rather than
					// recruit more replicas into it.
					rt.rm.shedStops.Inc()
					applyMaxRetryAfter(out.res, maxRetryAfter)
					return out.res, nil
				}
			}
			// Failed or shedding: start the next candidate immediately
			// instead of waiting out the hedge timer.
			if launched < len(candidates) {
				launch()
				pending++
				rt.rm.failovers.Inc()
			}
		}
	}
	if last.err == nil && last.res != nil && last.res.status == http.StatusTooManyRequests {
		applyMaxRetryAfter(last.res, maxRetryAfter)
	}
	return last.res, last.err
}

// writeUpstream copies a buffered upstream response to the client,
// stamping which replica served it and any routing note.
func writeUpstream(w http.ResponseWriter, res *upstreamResult, note string) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Router-Replica", res.replica)
	if note != "" {
		w.Header().Set("X-Router-Note", note)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// prefixJobID rewrites the job_id field of a buffered JSON response to
// carry the serving replica's ring index ("j7" → "r2-j7"), so later job
// polls route back to the replica that owns the job. Bodies without a
// job_id pass through untouched.
func (rt *Router) prefixJobID(res *upstreamResult) {
	idx := rt.mem.indexOf(res.replica)
	if idx < 0 {
		return
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(res.body, &m); err != nil {
		return
	}
	raw, ok := m["job_id"]
	if !ok {
		return
	}
	var id string
	if err := json.Unmarshal(raw, &id); err != nil || id == "" {
		return
	}
	prefixed, _ := json.Marshal(fmt.Sprintf("r%d%s%s", idx, jobIDSep, id))
	res.body = bytes.Replace(res.body, []byte(`"job_id":`+string(raw)), []byte(`"job_id":`+string(prefixed)), 1)
}

// splitJobID parses a router job id back into (replica, local id).
func (rt *Router) splitJobID(id string) (replica, local string, ok bool) {
	if !strings.HasPrefix(id, "r") {
		return "", "", false
	}
	rest := id[1:]
	cut := strings.Index(rest, jobIDSep)
	if cut <= 0 {
		return "", "", false
	}
	var idx int
	if _, err := fmt.Sscanf(rest[:cut], "%d", &idx); err != nil {
		return "", "", false
	}
	reps := rt.mem.replicas
	if idx < 0 || idx >= len(reps) {
		return "", "", false
	}
	return reps[idx], rest[cut+len(jobIDSep):], true
}

// jobRouted proxies job status/cancel to the replica encoded in the job
// id prefix, rewriting ids in both directions.
func (rt *Router) jobRouted(basePath string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		replica, local, ok := rt.splitJobID(id)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job %q (router job ids look like r0-j1)", id)
			return
		}
		res, err := rt.forward(r.Context(), replica, r.Method, basePath+local, nil, "")
		if err != nil {
			writeError(w, http.StatusBadGateway, "replica %s: %v", replica, err)
			return
		}
		rt.prefixJobID(res)
		writeUpstream(w, res, "")
	}
}

// handleJobEvents streams a job's NDJSON/SSE events from the owning
// replica, rewriting the replica-local job id on the fly.
func (rt *Router) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	replica, local, ok := rt.splitJobID(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q (router job ids look like r0-j1)", id)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, replica+"/v2/jobs/"+local+"/events", nil)
	if err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	if accept := r.Header.Get("Accept"); accept != "" {
		req.Header.Set("Accept", accept)
	}
	stampUpstreamHeaders(r.Context(), req.Header)
	// Streams must not be bounded by the client's request timeout.
	streamClient := &http.Client{Transport: rt.client.Transport}
	resp, err := streamClient.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, "replica %s: %v", replica, err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Router-Replica", replica)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	oldID := fmt.Sprintf("%q:%q", "job_id", local)
	newID := fmt.Sprintf("%q:%q", "job_id", id)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.Replace(sc.Text(), oldID, newID, 1)
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// readBody buffers a request body for replay across failover attempts.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return nil, false
	}
	return body, true
}

// routeBody routes a buffered request by key with hedged failover and
// job-id rewriting.
func (rt *Router) routeBody(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	candidates, note := rt.mem.rank(key, rt.cfg.Replication)
	if len(candidates) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no healthy replica")
		return
	}
	if note != "" {
		rt.rm.staleRoutes.Inc()
	}
	res, err := rt.tryCandidates(r.Context(), candidates, r.Method, r.URL.Path, body, "application/json")
	if err != nil {
		writeError(w, http.StatusBadGateway, "all replicas failed: %v", err)
		return
	}
	rt.prefixJobID(res)
	writeUpstream(w, res, note)
}

// graphKeyOf extracts the routing key from a request body that carries
// a graph plus options (the /v1 select/estimate shims).
func routingKey(graph string, opts service.Options, opinionAware bool) string {
	resolved := holisticim.Options{
		Model:   holisticim.ModelKind(opts.Model),
		Epsilon: opts.Epsilon,
		Seed:    opts.Seed,
	}.Resolved(opinionAware)
	return QueryKey(graph, resolved.Model.RRSemantics(), resolved.Epsilon)
}

func (rt *Router) handleSelect(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req service.SelectRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	rt.routeBody(w, r, routingKey(req.Graph, req.Options, false), body)
}

func (rt *Router) handleEstimate(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req service.EstimateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	opinionAware := holisticim.ModelKind(req.Options.Model).OpinionAware()
	rt.routeBody(w, r, routingKey(req.Graph, req.Options, opinionAware), body)
}

func (rt *Router) handleGraphStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rt.routeBody(w, r, QueryKey(name, "ic", 0.1), nil)
}

func (rt *Router) handleSketchInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	graph := id
	if cut := strings.Index(id, ":"); cut > 0 {
		graph = id[:cut]
	}
	rt.routeBody(w, r, QueryKey(graph, "ic", 0.1), nil)
}

// fanListMerge fans a list GET out to every healthy replica and merges
// the results, deduplicating by the given JSON field (replicas sharing
// a store advertise identical entries).
func (rt *Router) fanListMerge(path, field, dedupKey string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		healthy := rt.mem.healthy()
		if len(healthy) == 0 {
			writeError(w, http.StatusServiceUnavailable, "no healthy replica")
			return
		}
		type listResp struct {
			res *upstreamResult
			err error
		}
		results := make([]listResp, len(healthy))
		var wg sync.WaitGroup
		for i, addr := range healthy {
			wg.Add(1)
			go func(i int, addr string) {
				defer wg.Done()
				res, err := rt.forward(r.Context(), addr, http.MethodGet, path, nil, "")
				results[i] = listResp{res, err}
			}(i, addr)
		}
		wg.Wait()

		seen := make(map[string]bool)
		var merged []json.RawMessage
		ok := false
		for _, out := range results {
			if out.err != nil || out.res.status != http.StatusOK {
				continue
			}
			ok = true
			var payload map[string][]json.RawMessage
			if err := json.Unmarshal(out.res.body, &payload); err != nil {
				continue
			}
			for _, item := range payload[field] {
				var keyed map[string]any
				if err := json.Unmarshal(item, &keyed); err != nil {
					continue
				}
				k, _ := keyed[dedupKey].(string)
				if k == "" || seen[k] {
					continue
				}
				seen[k] = true
				merged = append(merged, item)
			}
		}
		if !ok {
			writeError(w, http.StatusBadGateway, "no replica answered %s", path)
			return
		}
		sort.Slice(merged, func(i, j int) bool { return string(merged[i]) < string(merged[j]) })
		if merged == nil {
			merged = []json.RawMessage{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{field: merged})
	}
}

// handleStats reports every healthy replica's stats keyed by address —
// a cluster is many worker pools and caches, so the shape is per-replica
// rather than a lossy sum.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	healthy := rt.mem.healthy()
	out := make(map[string]json.RawMessage, len(healthy))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, addr := range healthy {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			res, err := rt.forward(r.Context(), addr, http.MethodGet, "/v1/stats", nil, "")
			if err != nil || res.status != http.StatusOK {
				return
			}
			mu.Lock()
			out[addr] = res.body
			mu.Unlock()
		}(addr)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"replicas": out})
}

// fanAll sends a mutating request to EVERY healthy replica — registry
// mutations must land everywhere, since any replica can serve any key.
// The response is the first replica's; a replica that fails the
// mutation fails the whole request so the operator knows the cluster
// diverged. (With a shared store, publishing through the store is the
// better path; this keeps the direct API working.)
func (rt *Router) fanAll(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	healthy := rt.mem.healthy()
	if len(healthy) == 0 {
		writeError(w, http.StatusServiceUnavailable, "no healthy replica")
		return
	}
	results := make([]*upstreamResult, len(healthy))
	errs := make([]error, len(healthy))
	var wg sync.WaitGroup
	for i, addr := range healthy {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			results[i], errs[i] = rt.forward(r.Context(), addr, r.Method, r.URL.Path, body, "application/json")
		}(i, addr)
	}
	wg.Wait()
	for i := range healthy {
		if errs[i] != nil {
			writeError(w, http.StatusBadGateway, "replica %s: %v", healthy[i], errs[i])
			return
		}
		if results[i].status >= 400 {
			rt.prefixJobID(results[i])
			writeUpstream(w, results[i], "mutation failed on "+healthy[i]+"; cluster may have diverged")
			return
		}
	}
	rt.prefixJobID(results[0])
	writeUpstream(w, results[0], "")
}
