// Package cluster makes the serving layer horizontally scalable: a
// shared snapshot store replicas warm-load artifacts from, a watcher
// that keeps a replica's registries synchronized with the store's
// manifest, and a consistent-hash scatter-gather router that spreads
// query traffic over healthy replicas.
//
// The design leans directly on the paper's build-once/serve-many sketch
// economics: an RR-sketch index is an immutable, fingerprinted artifact,
// so any replica that loads the same snapshot serves byte-identical
// answers — which is what lets the router treat replicas as
// interchangeable and consistent hashing as a cache-affinity
// optimization rather than a correctness requirement.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ManifestGraph describes one published graph snapshot: where its file
// lives (relative to the store root), the content fingerprint of the
// bytes, and the mutation-log version the snapshot captures.
type ManifestGraph struct {
	Name        string `json:"name"`
	File        string `json:"file"`
	Fingerprint string `json:"fingerprint"`
	Version     uint64 `json:"version"`
}

// ManifestSketch describes one published sketch snapshot, keyed exactly
// like the serving registry keys it: (graph, RR semantics, ε, seed).
// GraphFingerprint pins the sample to the graph content it was built
// over — a replica refuses to load the sketch against anything else.
type ManifestSketch struct {
	ID               string  `json:"id"`
	Graph            string  `json:"graph"`
	Model            string  `json:"model"` // RR semantics: "ic", "lt" or "oc"
	Epsilon          float64 `json:"epsilon"`
	Seed             uint64  `json:"seed"`
	File             string  `json:"file"`
	GraphFingerprint string  `json:"graph_fingerprint"`
	GraphVersion     uint64  `json:"graph_version"`
}

// Manifest is the store's table of contents: every artifact a replica
// must hold to be ready. Version increments on every publish, giving
// watchers and routers a single freshness ordinal to compare.
type Manifest struct {
	Version  uint64           `json:"version"`
	Graphs   []ManifestGraph  `json:"graphs"`
	Sketches []ManifestSketch `json:"sketches"`
}

// GraphByName returns the manifest entry for a graph name, if present.
func (m *Manifest) GraphByName(name string) (ManifestGraph, bool) {
	for _, g := range m.Graphs {
		if g.Name == name {
			return g, true
		}
	}
	return ManifestGraph{}, false
}

// SketchByID returns the manifest entry for a sketch id, if present.
func (m *Manifest) SketchByID(id string) (ManifestSketch, bool) {
	for _, s := range m.Sketches {
		if s.ID == id {
			return s, true
		}
	}
	return ManifestSketch{}, false
}

// sortEntries keeps the manifest's JSON deterministic so identical
// contents serialize to identical bytes regardless of publish order.
func (m *Manifest) sortEntries() {
	sort.Slice(m.Graphs, func(i, j int) bool { return m.Graphs[i].Name < m.Graphs[j].Name })
	sort.Slice(m.Sketches, func(i, j int) bool { return m.Sketches[i].ID < m.Sketches[j].ID })
}

// readManifest loads path. A missing file is an empty manifest (version
// 0): a store directory starts useful before its first publish.
func readManifest(path string) (Manifest, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Manifest{}, nil
	}
	if err != nil {
		return Manifest{}, fmt.Errorf("cluster: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, fmt.Errorf("cluster: parse manifest %s: %w", path, err)
	}
	return m, nil
}

// writeManifest publishes m atomically: marshal to a temp file in the
// same directory, then rename over the final path. Readers either see
// the old manifest or the new one, never a torn write.
func writeManifest(path string, m *Manifest) error {
	m.sortEntries()
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("cluster: write manifest: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: write manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cluster: write manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cluster: publish manifest: %w", err)
	}
	return nil
}
