package cluster

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/service"
)

// Watcher keeps one replica's registries synchronized with a snapshot
// store: each sync pass diffs the manifest against what the replica has
// loaded (by content fingerprint, never by name alone) and warm-loads
// new or changed artifacts through the registries' replace paths — so
// the existing consistency machinery (cache drops, generation bumps,
// sketch rebind-or-evict) runs exactly as it does for an operator
// reload. The replica's /readyz flips only after the first pass loads
// the manifest completely.
type Watcher struct {
	store    *Store
	srv      *service.Server
	interval time.Duration

	// OnSync, when set, observes every sync pass (for logging).
	OnSync func(SyncResult, error)

	mu sync.Mutex
	// loadedGraphs maps graph name → fingerprint this watcher loaded;
	// loadedSketches maps sketch id → the graph fingerprint its loaded
	// sample was built over. Only ids recorded here are ever evicted, so
	// the watcher never touches locally built artifacts.
	loadedGraphs   map[string]string
	loadedSketches map[string]string
	synced         bool
}

// SyncResult reports what one sync pass did.
type SyncResult struct {
	ManifestVersion uint64
	GraphsLoaded    int
	SketchesLoaded  int
	SketchesEvicted int
}

// NewWatcher builds a watcher over store feeding srv's registries.
// interval paces Run's sync loop (default 2s).
func NewWatcher(store *Store, srv *service.Server, interval time.Duration) *Watcher {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &Watcher{
		store:          store,
		srv:            srv,
		interval:       interval,
		loadedGraphs:   make(map[string]string),
		loadedSketches: make(map[string]string),
	}
}

// SyncOnce runs one full sync pass: graphs first (a sketch can only bind
// to a loaded graph), then sketches, then eviction of store-loaded
// sketches the manifest dropped. On full success the replica's manifest
// version advances and — on the first success — /readyz flips ready. A
// failed pass loads what it can, changes no readiness, and is retried
// by Run on the next tick.
func (w *Watcher) SyncOnce(ctx context.Context) (SyncResult, error) {
	w.mu.Lock()
	defer w.mu.Unlock()

	m, err := w.store.Manifest()
	if err != nil {
		return SyncResult{}, err
	}
	res := SyncResult{ManifestVersion: m.Version}

	for _, entry := range m.Graphs {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if w.loadedGraphs[entry.Name] == entry.Fingerprint {
			continue
		}
		g, err := w.loadGraph(entry)
		if err != nil {
			return res, err
		}
		if err := w.srv.Registry().ReplaceSnapshot(entry.Name, g, "store:"+entry.File, entry.Version); err != nil {
			return res, fmt.Errorf("cluster: register graph %q: %w", entry.Name, err)
		}
		w.loadedGraphs[entry.Name] = entry.Fingerprint
		res.GraphsLoaded++
	}

	for _, entry := range m.Sketches {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if w.loadedSketches[entry.ID] == entry.GraphFingerprint {
			continue
		}
		if err := w.loadSketch(entry); err != nil {
			return res, err
		}
		w.loadedSketches[entry.ID] = entry.GraphFingerprint
		res.SketchesLoaded++
	}

	// Store-loaded sketches the manifest no longer lists are evicted —
	// the publisher retired the sample, and this replica must not keep
	// serving it. Graphs are deliberately NOT evicted: queries referencing
	// the name keep working against the last published content.
	for id := range w.loadedSketches {
		if _, ok := m.SketchByID(id); !ok {
			w.srv.Sketches().Evict(id)
			delete(w.loadedSketches, id)
			res.SketchesEvicted++
		}
	}

	w.srv.SetManifestVersion(m.Version)
	if !w.synced {
		w.synced = true
		w.srv.SetReady(true)
	}
	return res, nil
}

// loadGraph reads and fingerprint-verifies one published graph file:
// the loaded content must hash to exactly what the manifest promised,
// which fences out torn publishes and mislabeled files.
func (w *Watcher) loadGraph(entry ManifestGraph) (*holisticim.Graph, error) {
	f, err := os.Open(w.store.Path(entry.File))
	if err != nil {
		return nil, fmt.Errorf("cluster: open graph %q: %w", entry.Name, err)
	}
	defer f.Close()
	g, err := holisticim.ReadBinaryGraph(f)
	if err != nil {
		return nil, fmt.Errorf("cluster: read graph %q: %w", entry.Name, err)
	}
	if fp := fmt.Sprintf("%016x", g.Fingerprint()); fp != entry.Fingerprint {
		return nil, fmt.Errorf("cluster: graph %q fingerprint %s does not match manifest %s",
			entry.Name, fp, entry.Fingerprint)
	}
	return g, nil
}

// loadSketch reads one published sketch and installs it over the graph
// instance currently registered for its name. The registered graph must
// carry the exact fingerprint the sketch was built over — a sketch
// published against a newer (or older) graph than this replica has
// loaded fails the pass and is retried once the graph catches up; the
// snapshot reader then verifies the same fingerprint from the file's
// own header before any set is accepted.
func (w *Watcher) loadSketch(entry ManifestSketch) error {
	g, err := w.srv.Registry().Get(entry.Graph)
	if err != nil {
		return fmt.Errorf("cluster: sketch %q needs graph %q: %w", entry.ID, entry.Graph, err)
	}
	if fp := fmt.Sprintf("%016x", g.Fingerprint()); fp != entry.GraphFingerprint {
		return fmt.Errorf("cluster: sketch %q built over graph fingerprint %s, replica has %s",
			entry.ID, entry.GraphFingerprint, fp)
	}
	f, err := os.Open(w.store.Path(entry.File))
	if err != nil {
		return fmt.Errorf("cluster: open sketch %q: %w", entry.ID, err)
	}
	defer f.Close()
	idx, err := holisticim.ReadSketch(f, g)
	if err != nil {
		return fmt.Errorf("cluster: read sketch %q: %w", entry.ID, err)
	}
	idx.SetGraphVersion(entry.GraphVersion)
	if _, _, err := w.srv.Sketches().Put(entry.Graph, entry.Model, entry.Epsilon, entry.Seed, idx); err != nil {
		return fmt.Errorf("cluster: register sketch %q: %w", entry.ID, err)
	}
	return nil
}

// Run syncs immediately and then on every interval tick until ctx ends.
func (w *Watcher) Run(ctx context.Context) {
	tick := time.NewTicker(w.interval)
	defer tick.Stop()
	for {
		res, err := w.SyncOnce(ctx)
		if w.OnSync != nil {
			w.OnSync(res, err)
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}
