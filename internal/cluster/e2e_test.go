package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/holisticim/holisticim/internal/service"
)

// testCluster is 3 warm-loaded replicas behind a router, plus an
// independent single-node reference server loaded from the same store.
type testCluster struct {
	store    *Store
	single   *httptest.Server
	replicas []*httptest.Server
	servers  []*service.Server
	router   *Router
	front    *httptest.Server
}

func newTestCluster(t *testing.T) *testCluster {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	publishPair(t, st, "soc", testGraph(t, 1))

	_, _, single := newReplica(t, st)
	tc := &testCluster{store: st, single: single}
	var urls []string
	for i := 0; i < 3; i++ {
		s, _, ts := newReplica(t, st)
		tc.replicas = append(tc.replicas, ts)
		tc.servers = append(tc.servers, s)
		urls = append(urls, ts.URL)
	}
	rt, err := NewRouter(RouterConfig{Replicas: urls, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt.PollOnce(context.Background())
	tc.router = rt
	tc.front = httptest.NewServer(rt.Handler())
	t.Cleanup(tc.front.Close)
	return tc
}

func batchRequest() service.QueryRequest {
	return service.QueryRequest{
		Graph:     "soc",
		Algorithm: "imm",
		Ks:        []int{2, 3, 5, 7, 8},
		Options:   service.Options{Epsilon: testEps, Seed: testSeed},
	}
}

// TestRoutedBatchByteEquivalentToSingleNode is the PR's acceptance
// criterion: a 5-k batch /v2/query routed (scattered) over 3 replicas
// must be byte-equivalent to the same batch on a single node — same
// seeds, same metrics, same smaller-k-is-a-prefix invariant, same
// per-member plan steps — with only wall-clock fields normalized. Then a
// replica dies mid-run and the batch must still succeed, unchanged, via
// failover.
func TestRoutedBatchByteEquivalentToSingleNode(t *testing.T) {
	tc := newTestCluster(t)
	req := batchRequest()

	code, want, _ := postQuery(t, tc.single.URL, req)
	if code != http.StatusOK || !want.Sketch || want.Answer == nil {
		t.Fatalf("single-node batch: status %d, %+v", code, want)
	}

	code, got, resp := postQuery(t, tc.front.URL, req)
	if code != http.StatusOK {
		t.Fatalf("routed batch: status %d, %+v", code, got)
	}
	if resp.Header.Get("X-Router-Scatter") != "1" {
		t.Fatal("routed batch was not scattered")
	}
	normalizeTiming(&want)
	normalizeTiming(&got)
	if w, g := mustJSON(t, want), mustJSON(t, got); w != g {
		t.Fatalf("routed batch differs from single node:\nsingle: %s\nrouted: %s", w, g)
	}

	// Prefix invariant on the routed answer itself.
	full := got.Answer.Members[len(got.Answer.Members)-1].Result.Seeds
	for _, m := range got.Answer.Members {
		if len(m.Result.Seeds) != m.K {
			t.Fatalf("member k=%d has %d seeds", m.K, len(m.Result.Seeds))
		}
		for i, sd := range m.Result.Seeds {
			if sd != full[i] {
				t.Fatalf("member k=%d diverges from the kmax order at %d", m.K, i)
			}
		}
	}
	for i, step := range got.Answer.Plan.Steps {
		if step.Member != i {
			t.Fatalf("plan step %d carries member %d", i, step.Member)
		}
	}

	// Kill the key's preferred replica WITHOUT telling the router (no
	// re-poll): routing must fail over on the live error and still
	// produce the identical answer.
	key := QueryKey("soc", "ic", testEps)
	candidates, _ := tc.router.mem.rank(key, tc.router.cfg.Replication)
	if len(candidates) == 0 {
		t.Fatal("no candidates for key")
	}
	for _, ts := range tc.replicas {
		if ts.URL == candidates[0] {
			ts.Close()
		}
	}
	code, after, _ := postQuery(t, tc.front.URL, req)
	if code != http.StatusOK {
		t.Fatalf("batch after replica death: status %d, %+v", code, after)
	}
	normalizeTiming(&after)
	if w, g := mustJSON(t, want), mustJSON(t, after); w != g {
		t.Fatalf("failover answer differs from single node:\nsingle: %s\nfailover: %s", w, g)
	}

	// Once the poller notices, the dead replica leaves the healthy set
	// and answers keep flowing.
	tc.router.PollOnce(context.Background())
	if h := tc.router.mem.healthy(); len(h) != 2 {
		t.Fatalf("healthy set after death: %v", h)
	}
	code, final, _ := postQuery(t, tc.front.URL, req)
	if code != http.StatusOK {
		t.Fatalf("batch after re-poll: status %d", code)
	}
	normalizeTiming(&final)
	if w, g := mustJSON(t, want), mustJSON(t, final); w != g {
		t.Fatal("post-repoll answer differs from single node")
	}
}

// A single-member (non-batch) sketch query routes whole — no scatter —
// and still matches the single node byte-for-byte.
func TestRoutedSingleQueryMatchesSingleNode(t *testing.T) {
	tc := newTestCluster(t)
	req := service.QueryRequest{
		Graph:     "soc",
		Algorithm: "imm",
		K:         6,
		Options:   service.Options{Epsilon: testEps, Seed: testSeed},
	}
	code, want, _ := postQuery(t, tc.single.URL, req)
	if code != http.StatusOK || !want.Sketch {
		t.Fatalf("single-node: status %d, %+v", code, want)
	}
	code, got, resp := postQuery(t, tc.front.URL, req)
	if code != http.StatusOK {
		t.Fatalf("routed: status %d, %+v", code, got)
	}
	if resp.Header.Get("X-Router-Scatter") != "" {
		t.Fatal("single-member query must not scatter")
	}
	if resp.Header.Get("X-Router-Replica") == "" {
		t.Fatal("routed response does not name its serving replica")
	}
	normalizeTiming(&want)
	normalizeTiming(&got)
	if w, g := mustJSON(t, want), mustJSON(t, got); w != g {
		t.Fatalf("routed single query differs:\nsingle: %s\nrouted: %s", w, g)
	}
}

// Cold (non-sketch) queries become jobs; the router must prefix the job
// id with the owning replica and route polls back to it.
func TestRoutedColdJobRoundTrip(t *testing.T) {
	tc := newTestCluster(t)
	req := service.QueryRequest{
		Graph:     "soc",
		Algorithm: "degree",
		K:         4,
	}
	code, qr, _ := postQuery(t, tc.front.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("cold query status %d, %+v", code, qr)
	}
	if !strings.HasPrefix(qr.JobID, "r") || !strings.Contains(qr.JobID, jobIDSep) {
		t.Fatalf("job id %q not router-prefixed", qr.JobID)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(tc.front.URL + "/v2/jobs/" + qr.JobID)
		if err != nil {
			t.Fatal(err)
		}
		var poll service.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&poll); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		if poll.JobID != qr.JobID {
			t.Fatalf("poll echoed job id %q, want %q", poll.JobID, qr.JobID)
		}
		if poll.State == service.StateDone {
			if poll.Answer == nil || len(poll.Answer.Members) != 1 || len(poll.Answer.Members[0].Result.Seeds) != 4 {
				t.Fatalf("job answer %+v", poll.Answer)
			}
			break
		}
		if poll.State == service.StateFailed || poll.State == service.StateCanceled {
			t.Fatalf("job ended %s: %s", poll.State, poll.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", poll.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// The router's own probes: /readyz tracks replica health; /v1/cluster/info
// aggregates per-replica state; list endpoints merge and deduplicate.
func TestRouterProbesAndMergedLists(t *testing.T) {
	tc := newTestCluster(t)

	resp, err := http.Get(tc.front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router readyz %d with healthy replicas", resp.StatusCode)
	}

	resp, err = http.Get(tc.front.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var graphs struct {
		Graphs []service.GraphInfo `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&graphs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(graphs.Graphs) != 1 || graphs.Graphs[0].Name != "soc" {
		t.Fatalf("merged graph list %+v, want single deduplicated soc", graphs.Graphs)
	}

	resp, err = http.Get(tc.front.URL + "/v1/cluster/info")
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ManifestVersion uint64                  `json:"manifest_version"`
		Replicas        map[string]replicaState `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(view.Replicas) != 3 {
		t.Fatalf("cluster view has %d replicas", len(view.Replicas))
	}
	if view.ManifestVersion == 0 {
		t.Fatal("cluster view reports manifest v0 after warm-load")
	}
	for addr, st := range view.Replicas {
		if !st.Healthy {
			t.Fatalf("replica %s unhealthy in view: %+v", addr, st)
		}
	}

	// All replicas dead -> router not ready, queries shed with the
	// uniform envelope.
	for _, ts := range tc.replicas {
		ts.Close()
	}
	tc.router.PollOnce(context.Background())
	resp, err = http.Get(tc.front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var envelope service.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || envelope.Error.Code != "unavailable" {
		t.Fatalf("dead-cluster readyz: %d %+v", resp.StatusCode, envelope)
	}
}
