package cluster

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/holisticim/holisticim/internal/obs"
	"github.com/holisticim/holisticim/internal/service"
)

// TestRequestIDPropagation proves one id follows a request through the
// cluster: the router assigns (or trusts) an X-Request-ID, forwards it
// to the replica it proxies to, and the replica's structured log lines
// and response carry that same id.
func TestRequestIDPropagation(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	publishPair(t, st, "soc", testGraph(t, 1))

	// Replica with a captive logger so we can read its request lines.
	var replicaLog bytes.Buffer
	s := service.New(service.Config{
		ColdStart: true,
		Logger:    obs.NewLogger(&replicaLog, "imserver", slog.LevelDebug),
	})
	t.Cleanup(s.Close)
	w := NewWatcher(st, s, 0)
	if _, err := w.SyncOnce(context.Background()); err != nil {
		t.Fatalf("warm-load: %v", err)
	}
	replica := httptest.NewServer(s.Handler())
	t.Cleanup(replica.Close)

	rt, err := NewRouter(RouterConfig{Replicas: []string{replica.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rt.PollOnce(context.Background())
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	// Caller-supplied id: trusted by the router, proxied to the replica.
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/select",
		strings.NewReader(`{"graph":"soc","algorithm":"imm","k":2,"options":{"epsilon":0.3,"seed":7}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "rid-prop-test")
	resp, err := front.Client().Do(req)
	if err != nil {
		t.Fatalf("routed select: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed select: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != "rid-prop-test" {
		t.Errorf("router did not echo the inbound id: got %q", got)
	}
	if !strings.Contains(replicaLog.String(), "request_id=rid-prop-test") {
		t.Errorf("replica log does not carry the router's request id:\n%s", replicaLog.String())
	}

	// No caller id: the router mints one and the replica still logs it.
	replicaLog.Reset()
	resp, err = front.Client().Post(front.URL+"/v1/select", "application/json",
		strings.NewReader(`{"graph":"soc","algorithm":"imm","k":2,"options":{"epsilon":0.3,"seed":7}}`))
	if err != nil {
		t.Fatalf("routed select: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	minted := resp.Header.Get(obs.RequestIDHeader)
	if minted == "" {
		t.Fatal("router did not mint a request id")
	}
	if !strings.Contains(replicaLog.String(), "request_id="+minted) {
		t.Errorf("replica log does not carry minted id %q:\n%s", minted, replicaLog.String())
	}
}

// TestRouterMetricsScrape drives a routed request, scrapes the router's
// /metrics and checks the routing families are present with the HTTP
// request counted.
func TestRouterMetricsScrape(t *testing.T) {
	tc := newTestCluster(t)

	resp, err := http.Post(tc.front.URL+"/v1/select", "application/json",
		strings.NewReader(`{"graph":"soc","algorithm":"imm","k":2,"options":{"epsilon":0.3,"seed":7}}`))
	if err != nil {
		t.Fatalf("routed select: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed select: status %d", resp.StatusCode)
	}

	scrape, err := http.Get(tc.front.URL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer scrape.Body.Close()
	if ct := scrape.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	raw, err := io.ReadAll(scrape.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, family := range []string{
		"# TYPE im_router_proxy_duration_seconds histogram",
		"# TYPE im_router_hedges_total counter",
		"# TYPE im_router_failovers_total counter",
		"# TYPE im_router_scatters_total counter",
		"# TYPE im_router_replicas_healthy gauge",
		"# TYPE http_requests_total counter",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("scrape missing %q", family)
		}
	}
	if !strings.Contains(out, `http_requests_total{route="/v1/select",method="POST",code="200"} 1`) {
		t.Errorf("routed select not counted:\n%s", out)
	}
	if !strings.Contains(out, `im_router_proxy_duration_seconds_count{replica=`) {
		t.Errorf("proxy latency not observed per replica:\n%s", out)
	}
}
