package cluster

import (
	"sort"
)

// Ring implements rendezvous (highest-random-weight) hashing over a
// fixed replica set: every (key, replica) pair hashes to a weight and a
// key's owners are the replicas in descending weight order. Unlike a
// ring of virtual nodes, rendezvous hashing gives an unambiguous
// fallback ORDER — when the first owner is down the second is the same
// for every router instance — and removing a replica only moves the
// keys it owned.
//
// Because every replica warm-loads the full manifest, ownership is a
// cache-affinity optimization (hot sketch orders, warm result caches),
// never a correctness requirement: any healthy replica can serve any
// key, so failover just walks down the owner list.
type Ring struct {
	replicas []string
}

// NewRing builds a ring over the replica identifiers (addresses). Order
// does not matter; two routers configured with the same set in any
// order agree on every key's owner sequence.
func NewRing(replicas []string) *Ring {
	out := append([]string(nil), replicas...)
	sort.Strings(out)
	return &Ring{replicas: out}
}

// Replicas returns the ring's members, sorted.
func (r *Ring) Replicas() []string { return append([]string(nil), r.replicas...) }

// hash64 is FNV-1a over the key and replica id, with a separator so
// ("ab","c") and ("a","bc") cannot collide structurally.
func hash64(key, replica string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x00000100000001b3
	)
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
	}
	mix(key)
	h ^= 0xff // separator byte outside both alphabets
	h *= prime
	mix(replica)
	return h
}

// Owners returns the key's replicas in preference order, at most n (all
// replicas when n <= 0 or exceeds the ring). The first entry is the
// primary owner; the rest are the deterministic failover sequence.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.replicas) == 0 {
		return nil
	}
	type weighted struct {
		replica string
		w       uint64
	}
	ws := make([]weighted, len(r.replicas))
	for i, rep := range r.replicas {
		ws[i] = weighted{rep, hash64(key, rep)}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].w != ws[j].w {
			return ws[i].w > ws[j].w
		}
		return ws[i].replica < ws[j].replica
	})
	if n <= 0 || n > len(ws) {
		n = len(ws)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = ws[i].replica
	}
	return out
}

// QueryKey is the routing key for a query: the resolved (graph, RR
// semantics, canonical ε) triple, matching the sketch identity minus the
// seed — queries differing only in seed share a sketch family and thus
// cache affinity.
func QueryKey(graph, semantics string, epsilon float64) string {
	return SketchIDOf(graph, semantics, epsilon, 0)
}
