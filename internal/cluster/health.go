package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"github.com/holisticim/holisticim/internal/obs"
	"github.com/holisticim/holisticim/internal/service"
)

// replicaState is the router's view of one replica, refreshed by polling
// GET /v1/cluster/info.
type replicaState struct {
	Healthy  bool                `json:"healthy"`
	LastErr  string              `json:"last_error,omitempty"`
	LastPoll time.Time           `json:"last_poll"`
	Info     service.ClusterInfo `json:"info"`
}

// membership polls replicas for liveness and manifest freshness and
// answers the ranking questions routing asks: who is healthy, who is
// manifest-fresh, who owns a key.
type membership struct {
	replicas []string // base URLs, ring order (sorted)
	ring     *Ring
	client   *http.Client
	interval time.Duration

	// logger reports health transitions; set by NewRouter before any
	// poll runs (defaults to discard for bare constructions).
	logger *slog.Logger

	mu     sync.RWMutex
	states map[string]*replicaState
}

func newMembership(replicas []string, client *http.Client, interval time.Duration) *membership {
	ring := NewRing(replicas)
	m := &membership{
		replicas: ring.Replicas(),
		ring:     ring,
		client:   client,
		interval: interval,
		states:   make(map[string]*replicaState, len(replicas)),
	}
	for _, r := range m.replicas {
		m.states[r] = &replicaState{}
	}
	m.logger = obs.Nop()
	return m
}

// PollOnce refreshes every replica's state concurrently. A replica is
// healthy when its cluster info answers 200 AND it reports ready —
// warm-loading or draining replicas take no new traffic.
func (m *membership) PollOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, addr := range m.replicas {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			info, err := m.fetchInfo(ctx, addr)
			m.mu.Lock()
			st := m.states[addr]
			was, everPolled := st.Healthy, !st.LastPoll.IsZero()
			st.LastPoll = time.Now()
			if err != nil {
				st.Healthy = false
				st.LastErr = err.Error()
			} else {
				st.Healthy = info.Ready
				st.LastErr = ""
				if !info.Ready {
					st.LastErr = "replica not ready"
				}
				st.Info = info
			}
			now, lastErr := st.Healthy, st.LastErr
			m.mu.Unlock()
			// Log transitions only (plus the very first verdict), not
			// every poll — a 1s poll interval would drown the log.
			if now != was || !everPolled {
				if now {
					m.logger.Info("replica healthy", "replica", addr)
				} else {
					m.logger.Warn("replica unhealthy", "replica", addr, "error", lastErr)
				}
			}
		}(addr)
	}
	wg.Wait()
}

func (m *membership) fetchInfo(ctx context.Context, addr string) (service.ClusterInfo, error) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/cluster/info", nil)
	if err != nil {
		return service.ClusterInfo{}, err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return service.ClusterInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.ClusterInfo{}, fmt.Errorf("cluster info: status %d", resp.StatusCode)
	}
	var info service.ClusterInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return service.ClusterInfo{}, err
	}
	return info, nil
}

// Run polls until ctx ends.
func (m *membership) Run(ctx context.Context) {
	tick := time.NewTicker(m.interval)
	defer tick.Stop()
	for {
		m.PollOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// healthy returns the healthy replicas in ring order.
func (m *membership) healthy() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for _, addr := range m.replicas {
		if m.states[addr].Healthy {
			out = append(out, addr)
		}
	}
	return out
}

// snapshot copies the full state map for the router's cluster view.
func (m *membership) snapshot() map[string]replicaState {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]replicaState, len(m.states))
	for addr, st := range m.states {
		out[addr] = *st
	}
	return out
}

// maxManifestVersion is the freshest manifest any healthy replica has
// fully loaded — the router's definition of "current".
func (m *membership) maxManifestVersion() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var max uint64
	for _, st := range m.states {
		if st.Healthy && st.Info.ManifestVersion > max {
			max = st.Info.ManifestVersion
		}
	}
	return max
}

// hasSketch reports whether any healthy replica advertises a loaded
// sketch for (graph, semantics, ε, seed) — the router's scatter
// eligibility signal. The replica-side planner still has the final say;
// this only predicts it.
func (m *membership) hasSketch(graph, semantics string, epsilon float64, seed uint64) bool {
	id := SketchIDOf(graph, semantics, epsilon, seed)
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, st := range m.states {
		if !st.Healthy {
			continue
		}
		for _, sk := range st.Info.Sketches {
			if sk.ID == id {
				return true
			}
		}
	}
	return false
}

// rank orders the candidate replicas for a key: the key's rendezvous
// owners first (capped at the replication factor), then every other
// healthy replica as failover — all filtered to healthy, and within
// each group manifest-fresh replicas before stale ones. The returned
// note is non-empty when the top choice is NOT a fresh owner, so routed
// responses can explain the degraded placement.
func (m *membership) rank(key string, replication int) (candidates []string, note string) {
	owners := m.ring.Owners(key, replication)
	healthySet := make(map[string]bool)
	for _, addr := range m.healthy() {
		healthySet[addr] = true
	}
	fresh := m.maxManifestVersion()
	m.mu.RLock()
	isFresh := func(addr string) bool {
		return m.states[addr].Info.ManifestVersion == fresh
	}
	ownerSet := make(map[string]bool, len(owners))
	var freshOwners, staleOwners, freshRest, staleRest []string
	for _, addr := range owners {
		ownerSet[addr] = true
		if !healthySet[addr] {
			continue
		}
		if isFresh(addr) {
			freshOwners = append(freshOwners, addr)
		} else {
			staleOwners = append(staleOwners, addr)
		}
	}
	for _, addr := range m.replicas {
		if ownerSet[addr] || !healthySet[addr] {
			continue
		}
		if isFresh(addr) {
			freshRest = append(freshRest, addr)
		} else {
			staleRest = append(staleRest, addr)
		}
	}
	m.mu.RUnlock()

	candidates = append(candidates, freshOwners...)
	candidates = append(candidates, staleOwners...)
	candidates = append(candidates, freshRest...)
	candidates = append(candidates, staleRest...)
	switch {
	case len(candidates) == 0:
		note = "no healthy replica"
	case len(freshOwners) == 0 && len(staleOwners) > 0:
		note = "owners lag the cluster manifest; routed to a stale owner"
	case len(freshOwners) == 0 && len(staleOwners) == 0:
		note = "no healthy owner for key; routed to a non-owner replica"
	}
	return candidates, note
}

// indexOf maps a replica address to its stable ring index, used as the
// job-id prefix (`r<idx>-...`) so job polling routes back to the replica
// that owns the job.
func (m *membership) indexOf(addr string) int {
	for i, a := range m.replicas {
		if a == addr {
			return i
		}
	}
	return -1
}
