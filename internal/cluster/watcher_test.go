package cluster

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/service"
)

func TestWatcherWarmLoadFlipsReady(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 1)
	publishPair(t, st, "soc", g)

	s := service.New(service.Config{ColdStart: true})
	defer s.Close()
	if s.Ready() {
		t.Fatal("cold server reports ready before warm-load")
	}
	w := NewWatcher(st, s, 0)
	res, err := w.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.GraphsLoaded != 1 || res.SketchesLoaded != 1 || res.ManifestVersion != 2 {
		t.Fatalf("sync result %+v", res)
	}
	if !s.Ready() {
		t.Fatal("server not ready after full manifest load")
	}
	got, err := s.Registry().Get("soc")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != g.Fingerprint() {
		t.Fatal("loaded graph content differs from published")
	}
	id := SketchIDOf("soc", "ic", testEps, testSeed)
	if _, err := s.Sketches().Get(id); err != nil {
		t.Fatalf("sketch %s not loaded: %v", id, err)
	}

	// A second pass over the same manifest is a no-op.
	res, err = w.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.GraphsLoaded+res.SketchesLoaded+res.SketchesEvicted != 0 {
		t.Fatalf("idempotent re-sync did work: %+v", res)
	}
}

func TestWatcherReloadsOnRepublish(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	publishPair(t, st, "soc", testGraph(t, 1))
	s := service.New(service.Config{ColdStart: true})
	defer s.Close()
	w := NewWatcher(st, s, 0)
	if _, err := w.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	g2 := testGraph(t, 2)
	publishPair(t, st, "soc", g2)
	res, err := w.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.GraphsLoaded != 1 || res.SketchesLoaded != 1 {
		t.Fatalf("republish sync result %+v", res)
	}
	got, err := s.Registry().Get("soc")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != g2.Fingerprint() {
		t.Fatal("replica still serves the superseded graph")
	}
}

func TestWatcherEvictsRetiredSketch(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	publishPair(t, st, "soc", testGraph(t, 1))
	s := service.New(service.Config{ColdStart: true})
	defer s.Close()
	w := NewWatcher(st, s, 0)
	if _, err := w.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	id := SketchIDOf("soc", "ic", testEps, testSeed)
	if err := st.RemoveSketch(id); err != nil {
		t.Fatal(err)
	}
	res, err := w.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SketchesEvicted != 1 {
		t.Fatalf("sync result %+v, want one eviction", res)
	}
	if _, err := s.Sketches().Get(id); err == nil {
		t.Fatalf("sketch %s still loaded after manifest retirement", id)
	}
}

// A graph artifact whose content does not hash to the manifest's
// fingerprint must be rejected — the fence against torn or mislabeled
// publishes. The replica stays not-ready.
func TestWatcherRejectsFingerprintMismatch(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 1)
	entry, err := st.PublishGraph("soc", g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the artifact with a DIFFERENT graph's bytes.
	var buf bytes.Buffer
	if err := holisticim.WriteBinaryGraph(&buf, testGraph(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.Path(entry.File), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s := service.New(service.Config{ColdStart: true})
	defer s.Close()
	w := NewWatcher(st, s, 0)
	if _, err := w.SyncOnce(context.Background()); err == nil {
		t.Fatal("sync accepted a fingerprint-mismatched graph")
	}
	if s.Ready() {
		t.Fatal("replica became ready off a failed warm-load")
	}
}

// A sketch published against a different graph content than the manifest's
// graph entry must fail the pass (and retry once the graph catches up) —
// never bind a sample to the wrong snapshot.
func TestWatcherRejectsSketchOverWrongGraph(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g1 := testGraph(t, 1)
	if _, err := st.PublishGraph("soc", g1, 0); err != nil {
		t.Fatal(err)
	}
	// Sketch built over DIFFERENT content, published under the same name.
	if _, err := st.PublishSketch("soc", testSketch(t, testGraph(t, 2))); err != nil {
		t.Fatal(err)
	}

	s := service.New(service.Config{ColdStart: true})
	defer s.Close()
	w := NewWatcher(st, s, 0)
	if _, err := w.SyncOnce(context.Background()); err == nil {
		t.Fatal("sync bound a sketch to a graph with a different fingerprint")
	}
	if s.Ready() {
		t.Fatal("replica became ready off a failed warm-load")
	}
	// The graph itself did load; only the sketch is held back.
	if _, err := s.Registry().Get("soc"); err != nil {
		t.Fatalf("graph should have loaded: %v", err)
	}
	id := SketchIDOf("soc", "ic", testEps, testSeed)
	if _, err := s.Sketches().Get(id); err == nil {
		t.Fatal("mismatched sketch was registered")
	}
}

// Sanity check used by the e2e tests: two distinct generator seeds give
// distinct fingerprints.
func TestTestGraphsDiffer(t *testing.T) {
	if fmt.Sprintf("%016x", testGraph(t, 1).Fingerprint()) == fmt.Sprintf("%016x", testGraph(t, 2).Fingerprint()) {
		t.Fatal("generator seeds 1 and 2 collide")
	}
}
