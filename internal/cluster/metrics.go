package cluster

import (
	"net/http"

	"github.com/holisticim/holisticim/internal/obs"
)

// routerMetrics are the router's own families — the routing decisions a
// replica can't see: per-replica proxy latency, hedged launches,
// failovers, scatter fan-outs and degraded (stale/non-owner) placements.
type routerMetrics struct {
	proxyDur      *obs.HistogramVec // im_router_proxy_duration_seconds{replica}
	hedges        *obs.Counter
	failovers     *obs.Counter
	shedStops     *obs.Counter
	scatters      *obs.Counter
	scatterAborts *obs.Counter
	staleRoutes   *obs.Counter
}

func (rt *Router) initObservability() {
	m := rt.metrics
	rt.rm = routerMetrics{
		proxyDur: m.HistogramVec("im_router_proxy_duration_seconds",
			"Upstream request latency in seconds, by replica.",
			nil, "replica"),
		hedges: m.Counter("im_router_hedges_total",
			"Hedged launches: extra candidates started because the leader ran past the hedge delay."),
		failovers: m.Counter("im_router_failovers_total",
			"Failover launches: extra candidates started after a candidate failed or shed."),
		shedStops: m.Counter("im_router_shed_stops_total",
			"Failovers suppressed by the 429 shed budget: the overload was surfaced to the client with the largest Retry-After instead of recruiting more replicas."),
		scatters: m.Counter("im_router_scatters_total",
			"Batch queries fanned out member-by-member across the owner set."),
		scatterAborts: m.Counter("im_router_scatter_aborts_total",
			"Scatters abandoned mid-flight (a member came back cold) and re-routed whole."),
		staleRoutes: m.Counter("im_router_stale_routes_total",
			"Requests routed with a degraded-placement note (stale or non-owner replica)."),
	}
	m.GaugeFunc("im_router_replicas_healthy", "Replicas currently passing health polls.",
		func() float64 { return float64(len(rt.mem.healthy())) })
	m.GaugeFunc("im_router_replicas", "Replicas configured on the ring.",
		func() float64 { return float64(len(rt.mem.replicas)) })
}

// handleMetrics serves the router's GET /metrics.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt.metrics.Handler().ServeHTTP(w, r)
}
