package cluster

import (
	"fmt"
	"os"
	"testing"
)

func TestStorePublishAndManifest(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 0 || len(m.Graphs) != 0 || len(m.Sketches) != 0 {
		t.Fatalf("fresh store manifest = %+v, want empty v0", m)
	}

	g := testGraph(t, 1)
	idx := testSketch(t, g)
	ge, err := st.PublishGraph("soc", g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ge.Fingerprint != fmt.Sprintf("%016x", g.Fingerprint()) {
		t.Fatalf("published fingerprint %s", ge.Fingerprint)
	}
	if _, err := os.Stat(st.Path(ge.File)); err != nil {
		t.Fatalf("graph artifact missing: %v", err)
	}
	se, err := st.PublishSketch("soc", idx)
	if err != nil {
		t.Fatal(err)
	}
	wantID := SketchIDOf("soc", "ic", testEps, testSeed)
	if se.ID != wantID {
		t.Fatalf("sketch id %q, want %q", se.ID, wantID)
	}
	if se.GraphFingerprint != ge.Fingerprint {
		t.Fatalf("sketch pinned to %s, graph is %s", se.GraphFingerprint, ge.Fingerprint)
	}
	if _, err := os.Stat(st.Path(se.File)); err != nil {
		t.Fatalf("sketch artifact missing: %v", err)
	}

	m, err = st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 {
		t.Fatalf("manifest version %d after two publishes, want 2", m.Version)
	}
	if _, ok := m.GraphByName("soc"); !ok {
		t.Fatal("manifest lost graph soc")
	}
	if _, ok := m.SketchByID(wantID); !ok {
		t.Fatalf("manifest lost sketch %s", wantID)
	}
}

// Republishing a name replaces its entry (no duplicates) and bumps the
// version; the superseded artifact file stays on disk for readers
// mid-load of the previous manifest.
func TestStoreRepublishReplaces(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g1 := testGraph(t, 1)
	g2 := testGraph(t, 2)
	e1, err := st.PublishGraph("soc", g1, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := st.PublishGraph("soc", g2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Fingerprint == e2.Fingerprint {
		t.Fatal("test graphs should differ")
	}
	m, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Graphs) != 1 || m.Graphs[0].Fingerprint != e2.Fingerprint {
		t.Fatalf("manifest graphs = %+v, want single entry at %s", m.Graphs, e2.Fingerprint)
	}
	if m.Version != 2 {
		t.Fatalf("manifest version %d, want 2", m.Version)
	}
	if _, err := os.Stat(st.Path(e1.File)); err != nil {
		t.Fatalf("superseded artifact removed: %v", err)
	}
}

func TestStoreRemoveSketch(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 1)
	publishPair(t, st, "soc", g)
	id := SketchIDOf("soc", "ic", testEps, testSeed)
	if err := st.RemoveSketch(id); err != nil {
		t.Fatal(err)
	}
	m, err := st.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sketches) != 0 {
		t.Fatalf("sketches after remove: %+v", m.Sketches)
	}
	if m.Version != 3 {
		t.Fatalf("manifest version %d, want 3", m.Version)
	}
}
