package cluster

import (
	"context"
	"net/http"
	"sync"
	"testing"
)

// TestHotReloadUnderConcurrentQueries republishes the (graph, sketch)
// pair while query traffic is in flight (run under -race). Every
// response observed during the swap must be one of exactly three
// self-consistent outcomes: the complete v1 answer, the complete v2
// answer, or a cold-job fallback from the fingerprint fence window
// (graph already replaced, matching sketch not yet bound). A torn answer
// — v1 seeds with v2 metrics, or any other mixture — fails the test.
func TestHotReloadUnderConcurrentQueries(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g1 := testGraph(t, 1)
	publishPair(t, st, "soc", g1)
	_, w, ts := newReplica(t, st)

	req := batchRequest()
	code, v1, _ := postQuery(t, ts.URL, req)
	if code != http.StatusOK || !v1.Sketch {
		t.Fatalf("v1 baseline: status %d, %+v", code, v1)
	}
	normalizeTiming(&v1)
	v1JSON := mustJSON(t, v1)

	// Pre-build the v2 artifacts so the publish itself is quick and the
	// swap happens well inside the query storm.
	g2 := testGraph(t, 2)
	idx2 := testSketch(t, g2)

	stop := make(chan struct{})
	type observed struct {
		json string
		cold bool
	}
	var mu sync.Mutex
	var seen []observed
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, qr, _ := postQuery(t, ts.URL, req)
				ob := observed{}
				switch {
				case code == http.StatusAccepted && qr.JobID != "":
					// Fence window: the sketch no longer matches the live
					// graph, so the planner degraded to a cold job. Cancel
					// it — this test is about serving consistency, not
					// cold compute.
					ob.cold = true
					dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/jobs/"+qr.JobID, nil)
					if resp, err := http.DefaultClient.Do(dreq); err == nil {
						resp.Body.Close()
					}
				case code == http.StatusOK && qr.Sketch:
					normalizeTiming(&qr)
					ob.json = mustJSON(t, qr)
				default:
					t.Errorf("mid-reload query: status %d, %+v", code, qr)
					return
				}
				mu.Lock()
				seen = append(seen, ob)
				mu.Unlock()
			}
		}()
	}

	// Republish and sync under traffic.
	if _, err := st.PublishGraph("soc", g2, idx2.GraphVersion()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.PublishSketch("soc", idx2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	code, v2, _ := postQuery(t, ts.URL, req)
	if code != http.StatusOK || !v2.Sketch {
		t.Fatalf("v2 final: status %d, %+v", code, v2)
	}
	normalizeTiming(&v2)
	v2JSON := mustJSON(t, v2)
	if v1JSON == v2JSON {
		t.Fatal("v1 and v2 answers identical; reload test has no signal")
	}

	var colds, v1s, v2s int
	for _, ob := range seen {
		switch {
		case ob.cold:
			colds++
		case ob.json == v1JSON:
			v1s++
		case ob.json == v2JSON:
			v2s++
		default:
			t.Fatalf("torn answer observed during reload:\n%s\nwant either\n%s\nor\n%s", ob.json, v1JSON, v2JSON)
		}
	}
	t.Logf("observed %d v1, %d v2, %d fence-window cold fallbacks across %d queries", v1s, v2s, colds, len(seen))
	if len(seen) == 0 {
		t.Fatal("storm observed no queries")
	}
}
