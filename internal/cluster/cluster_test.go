package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/service"
)

// Shared test fixture parameters: a small BA graph and a warm sketch
// over it, published once per store.
const (
	testNodes = 1500
	testEps   = 0.3
	testSeed  = uint64(7)
)

func testGraph(t *testing.T, genSeed uint64) *holisticim.Graph {
	t.Helper()
	g := holisticim.GenerateBA(testNodes, 3, genSeed)
	g.SetUniformProb(0.1)
	return g
}

func testSketch(t *testing.T, g *holisticim.Graph) *holisticim.Sketch {
	t.Helper()
	idx, err := holisticim.BuildSketch(context.Background(), g, holisticim.SketchOptions{
		Epsilon: testEps,
		Seed:    testSeed,
		BuildK:  16,
	})
	if err != nil {
		t.Fatalf("build sketch: %v", err)
	}
	return idx
}

// publishPair publishes (graph, sketch) into the store under name.
func publishPair(t *testing.T, st *Store, name string, g *holisticim.Graph) {
	t.Helper()
	idx := testSketch(t, g)
	if _, err := st.PublishGraph(name, g, idx.GraphVersion()); err != nil {
		t.Fatalf("publish graph: %v", err)
	}
	if _, err := st.PublishSketch(name, idx); err != nil {
		t.Fatalf("publish sketch: %v", err)
	}
}

// newReplica builds a cold service server, warm-loads it from the store
// and exposes it over httptest. The watcher is returned for tests that
// re-sync manually.
func newReplica(t *testing.T, st *Store) (*service.Server, *Watcher, *httptest.Server) {
	t.Helper()
	s := service.New(service.Config{ColdStart: true})
	t.Cleanup(s.Close)
	w := NewWatcher(st, s, 0)
	if _, err := w.SyncOnce(context.Background()); err != nil {
		t.Fatalf("warm-load: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, w, ts
}

// postQuery posts a /v2 query and decodes the response, returning the
// status, decoded body and raw response.
func postQuery(t *testing.T, baseURL string, req service.QueryRequest) (int, service.QueryResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v2/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v2/query: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var qr service.QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	return resp.StatusCode, qr, resp
}

// normalizeTiming zeroes the wall-clock fields, the only parts of a
// sketch-served answer that legitimately differ between runs/replicas.
func normalizeTiming(qr *service.QueryResponse) {
	if qr.Answer == nil {
		return
	}
	qr.Answer.TookMS = 0
	for i := range qr.Answer.Members {
		if qr.Answer.Members[i].Result != nil {
			qr.Answer.Members[i].Result.TookMS = 0
		}
		if qr.Answer.Members[i].Estimate != nil {
			qr.Answer.Members[i].Estimate.TookMS = 0
		}
	}
}

// mustJSON renders v as canonical JSON for byte-level comparison.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
