package heuristics

import (
	"container/heap"
	"context"
	"sort"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
)

// SIMPATH implements Goyal, Lu and Lakshmanan's "SimPath: An Efficient
// Algorithm for Influence Maximization under the Linear Threshold Model"
// (ICDM'11). Under LT the spread of a node equals 1 + the weight of all
// simple paths leaving it, so
//
//	σ(S) = Σ_{s∈S} σ^{V−S+s}(s),
//
// each term enumerable by backtracking with pruning threshold η (paths
// whose weight product drops below η are cut). Two published
// optimizations are included:
//
//   - vertex-cover optimization: spreads are enumerated only for nodes of
//     a (matching-based) vertex cover; each remaining node v derives its
//     spread from its out-neighbors' path sums with v's through-traffic
//     subtracted, using σ^{V}(v) = 1 + Σ_u w(v,u)·σ^{V−v}(u);
//   - look-ahead: a CELF queue is processed in batches of ℓ candidates,
//     and one enumeration per current seed prices all ℓ candidates at
//     once via per-candidate through-counters.
//
// The paper's experiments use η = 1e-3 and look-ahead ℓ = 4 (the EaSyIM
// paper's parameter table), which are the defaults here.
type SIMPATH struct {
	g         *graph.Graph
	eta       float64
	lookahead int
}

// NewSIMPATH returns a SIMPATH selector; zeros keep the published
// defaults (η=1e-3, lookahead=4).
func NewSIMPATH(g *graph.Graph, eta float64, lookahead int) *SIMPATH {
	if eta <= 0 {
		eta = 1e-3
	}
	if lookahead <= 0 {
		lookahead = 4
	}
	return &SIMPATH{g: g, eta: eta, lookahead: lookahead}
}

// Name implements im.Selector.
func (sp *SIMPATH) Name() string { return "SIMPATH" }

// spread enumerates all simple paths from u avoiding `excluded`, pruned
// at η, returning σ^{V−excluded}(u) = 1 + Σ path weights. When track is
// non-nil, through[v] accumulates the weight of enumerated path mass
// whose paths pass through or end at v (v ≠ u), so that the caller can
// price σ^{V−excluded−v}(u) = σ − through[v]. The traversal is iterative
// backtracking (Goyal et al.'s FORWARD/BACKTRACK) with on-path marking.
func (sp *SIMPATH) spread(u graph.NodeID, excluded []bool, through []float64) float64 {
	g := sp.g
	total := 1.0 // the node itself
	// Iterative DFS over simple paths. Each stack frame tracks the next
	// out-edge index to try.
	type frame struct {
		v    graph.NodeID
		edge int
		mass float64
	}
	onPath := make(map[graph.NodeID]bool, 16)
	onPath[u] = true
	stack := []frame{{v: u, edge: 0, mass: 1}}
	pathNodes := []graph.NodeID{u}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		nbrs := g.OutNeighbors(f.v)
		ws := g.OutWeights(f.v)
		advanced := false
		for f.edge < len(nbrs) {
			i := f.edge
			f.edge++
			w := nbrs[i]
			if onPath[w] || (excluded != nil && excluded[w]) {
				continue
			}
			m := f.mass * ws[i]
			if m < sp.eta {
				continue
			}
			// The path u..v→w contributes m to σ and to through[x] for every
			// node x on it except u (removing x kills this path).
			total += m
			if through != nil {
				for _, x := range pathNodes[1:] {
					through[x] += m
				}
				through[w] += m
			}
			onPath[w] = true
			pathNodes = append(pathNodes, w)
			stack = append(stack, frame{v: w, edge: 0, mass: m})
			advanced = true
			break
		}
		if !advanced {
			delete(onPath, f.v)
			pathNodes = pathNodes[:len(pathNodes)-1]
			stack = stack[:len(stack)-1]
		}
	}
	return total
}

// vertexCover returns a maximal-matching 2-approximate vertex cover of
// the underlying undirected graph.
func (sp *SIMPATH) vertexCover() []bool {
	g := sp.g
	n := g.NumNodes()
	cover := make([]bool, n)
	for u := graph.NodeID(0); u < n; u++ {
		if cover[u] {
			continue
		}
		for _, v := range g.OutNeighbors(u) {
			if !cover[v] {
				cover[u] = true
				cover[v] = true
				break
			}
		}
	}
	return cover
}

type spItem struct {
	v     graph.NodeID
	gain  float64
	round int // seed-set size the gain was computed against
	index int
}

type spHeap []*spItem

func (h spHeap) Len() int           { return len(h) }
func (h spHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h spHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *spHeap) Push(x interface{}) {
	it := x.(*spItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *spHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Select implements im.Selector. Path enumerations are SIMPATH's unit of
// work, so the context is checked before each one — in the vertex-cover
// initialization pass and in the batched look-ahead pricing loop — and at
// every chosen seed.
func (sp *SIMPATH) Select(ctx context.Context, k int) (im.Result, error) {
	g := sp.g
	n := g.NumNodes()
	res := im.Result{Algorithm: sp.Name()}
	if err := im.CheckK(k, n); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)

	// --- Initial spreads with the vertex-cover optimization.
	cover := sp.vertexCover()
	sigma := make([]float64, n)
	through := make([]float64, n)
	coverThrough := make(map[graph.NodeID][]float64, n/2)
	for v := graph.NodeID(0); v < n; v++ {
		if !cover[v] {
			continue
		}
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		th := make([]float64, n)
		sigma[v] = sp.spread(v, nil, th)
		coverThrough[v] = th
		res.AddMetric("enumerations", 1)
	}
	for v := graph.NodeID(0); v < n; v++ {
		if v&0x3FFF == 0 {
			if err := tr.Interrupted(&res); err != nil {
				return res, err
			}
		}
		if cover[v] {
			continue
		}
		// σ^V(v) = 1 + Σ_u w(v,u)·σ^{V−v}(u); every out-neighbor u of a
		// non-cover node is in the cover (cover property), so its through
		// counters are available.
		total := 1.0
		nbrs := g.OutNeighbors(v)
		ws := g.OutWeights(v)
		for i, u := range nbrs {
			su := sigma[u]
			if th, ok := coverThrough[u]; ok {
				su -= th[v]
			}
			total += ws[i] * su
		}
		sigma[v] = total
	}
	coverThrough = nil // release the O(|C|·n) pricing structure

	// --- CELF queue with batched look-ahead.
	h := make(spHeap, 0, n)
	items := make([]*spItem, n)
	for v := graph.NodeID(0); v < n; v++ {
		if v&0x3FFF == 0 {
			if err := tr.Interrupted(&res); err != nil {
				return res, err
			}
		}
		items[v] = &spItem{v: v, gain: sigma[v], round: 0}
		h = append(h, items[v])
	}
	heap.Init(&h)

	seeds := make([]graph.NodeID, 0, k)
	inSeeds := make([]bool, n)
	seedSpread := 0.0 // σ(S) = Σ_s σ^{V−S+s}(s)
	perSeedSpread := make([]float64, 0, k)

	for len(seeds) < k && h.Len() > 0 {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		top := h[0]
		if top.round == len(seeds) {
			heap.Pop(&h)
			seeds = append(seeds, top.v)
			inSeeds[top.v] = true
			seedSpread += top.gain
			perSeedSpread = append(perSeedSpread, seedSpread)
			tr.Seed(&res, top.v)
			continue
		}
		// Batch the top-ℓ stale candidates.
		batch := make([]*spItem, 0, sp.lookahead)
		for h.Len() > 0 && len(batch) < sp.lookahead && h[0].round != len(seeds) {
			batch = append(batch, heap.Pop(&h).(*spItem))
		}
		// Price σ(S ∪ {x}) for all x in the batch:
		//   Σ_{s∈S} σ^{V−S−x+s}(s) + σ^{V−S}(x)
		// with one enumeration per seed (through counters give the −x
		// corrections) and one enumeration per candidate.
		seedTotals := 0.0
		throughSum := make([]float64, n)
		for i := range through {
			through[i] = 0
		}
		for _, s := range seeds {
			if err := tr.Interrupted(&res); err != nil {
				return res, err
			}
			inSeeds[s] = false // exclude S \ {s}
			total := sp.spread(s, inSeeds, through)
			res.AddMetric("enumerations", 1)
			inSeeds[s] = true
			seedTotals += total
			for v := range throughSum {
				throughSum[v] += through[v]
				through[v] = 0
			}
		}
		for _, it := range batch {
			if err := tr.Interrupted(&res); err != nil {
				return res, err
			}
			cand := sp.spread(it.v, inSeeds, nil)
			res.AddMetric("enumerations", 1)
			newSpread := seedTotals - throughSum[it.v] + cand
			it.gain = newSpread - seedSpread
			it.round = len(seeds)
			heap.Push(&h, it)
		}
	}
	tr.Finish(&res)
	if len(perSeedSpread) > 0 {
		res.AddMetric("estimated_spread", perSeedSpread[len(perSeedSpread)-1])
	}
	return res, nil
}

// EstimateSpreadLT exposes SIMPATH's path-based spread estimator for a
// whole seed set; useful as a deterministic LT spread oracle in tests.
func (sp *SIMPATH) EstimateSpreadLT(seeds []graph.NodeID) float64 {
	n := sp.g.NumNodes()
	inSeeds := make([]bool, n)
	for _, s := range seeds {
		inSeeds[s] = true
	}
	total := 0.0
	for _, s := range seeds {
		inSeeds[s] = false
		total += sp.spread(s, inSeeds, nil)
		inSeeds[s] = true
	}
	return total
}

// sortSeeds is a test helper keeping deterministic comparisons simple.
func sortSeeds(s []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

var _ im.Selector = (*SIMPATH)(nil)
