package heuristics

import (
	"context"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
)

// IRIE implements Jung, Heo and Chen's "IRIE: Scalable and Robust
// Influence Maximization in Social Networks" (ICDM'12) for the IC and WC
// models. It couples
//
//   - IR, a global influence rank solved by damped fixed-point iteration
//     r(u) = (1 − AP(u)) · (1 + α · Σ_{v∈Out(u)} p(u,v)·r(v)), and
//   - IE, a cheap activation-probability estimate AP(u|S) propagated
//     forward from the selected seeds with threshold pruning,
//
// alternating k times: rank, take the argmax, fold it into AP, repeat.
// The paper's experiments use α = 0.7 and pruning threshold θ = 1/320,
// which are the defaults here.
type IRIE struct {
	g     *graph.Graph
	alpha float64
	theta float64
	iters int
}

// NewIRIE returns an IRIE selector; pass zeros to keep the published
// defaults (α=0.7, θ=1/320, 20 rank iterations).
func NewIRIE(g *graph.Graph, alpha, theta float64, iters int) *IRIE {
	if alpha <= 0 {
		alpha = 0.7
	}
	if theta <= 0 {
		theta = 1.0 / 320
	}
	if iters <= 0 {
		iters = 20
	}
	return &IRIE{g: g, alpha: alpha, theta: theta, iters: iters}
}

// Name implements im.Selector.
func (ir *IRIE) Name() string { return "IRIE" }

// Select implements im.Selector. Checkpoints sit at each rank iteration —
// the IRIE paper's observation that per-iteration state is tiny makes
// them essentially free — and at every chosen seed.
func (ir *IRIE) Select(ctx context.Context, k int) (im.Result, error) {
	g := ir.g
	n := g.NumNodes()
	res := im.Result{Algorithm: ir.Name()}
	if err := im.CheckK(k, n); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)

	ap := make([]float64, n)   // activation probability by current seeds
	rank := make([]float64, n) // influence rank
	next := make([]float64, n)
	selected := make([]bool, n)

	for len(res.Seeds) < k {
		// --- IR: damped iteration with AP discount.
		for i := range rank {
			rank[i] = 1
		}
		for it := 0; it < ir.iters; it++ {
			if err := tr.Interrupted(&res); err != nil {
				return res, err
			}
			for u := graph.NodeID(0); u < n; u++ {
				if selected[u] {
					next[u] = 0
					continue
				}
				sum := 0.0
				nbrs := g.OutNeighbors(u)
				ps := g.OutProbs(u)
				for i, v := range nbrs {
					sum += ps[i] * rank[v]
				}
				next[u] = (1 - ap[u]) * (1 + ir.alpha*sum)
			}
			rank, next = next, rank
		}
		// --- argmax over unselected nodes.
		best := graph.NodeID(-1)
		bestRank := 0.0
		for v := graph.NodeID(0); v < n; v++ {
			if selected[v] {
				continue
			}
			if best < 0 || rank[v] > bestRank {
				best = v
				bestRank = rank[v]
			}
		}
		if best < 0 {
			break
		}
		selected[best] = true
		// --- IE: fold the new seed into AP with forward propagation,
		// pruned below θ. Additive with saturation at 1 (the linear
		// approximation the IRIE paper adopts).
		ir.propagateAP(best, ap)
		tr.Seed(&res, best)
	}
	tr.Finish(&res)
	return res, nil
}

// propagateAP adds the activation probability contributed by a new seed
// to ap, walking forward while the path mass stays above θ.
func (ir *IRIE) propagateAP(seed graph.NodeID, ap []float64) {
	g := ir.g
	type frame struct {
		v    graph.NodeID
		mass float64
	}
	ap[seed] = 1
	stack := []frame{{seed, 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nbrs := g.OutNeighbors(f.v)
		ps := g.OutProbs(f.v)
		for i, w := range nbrs {
			m := f.mass * ps[i]
			if m < ir.theta {
				continue
			}
			ap[w] += m
			if ap[w] > 1 {
				ap[w] = 1
			}
			stack = append(stack, frame{w, m})
		}
	}
}

var _ im.Selector = (*IRIE)(nil)
