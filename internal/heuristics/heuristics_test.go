package heuristics

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func TestDegreeSelectsHubs(t *testing.T) {
	g := graph.Star(8, 0.1, 0.5)
	res := runSelect(NewDegree(g), 1)
	if res.Seeds[0] != 0 {
		t.Fatalf("degree picked %v", res.Seeds)
	}
}

func TestDegreeDiscountAvoidsClusteredSeeds(t *testing.T) {
	// Clique of 4 (node 0..3) plus a separate star at 4: plain degree
	// would take two clique members; degree discount should take one
	// clique node then the star hub.
	b := graph.NewBuilder(9)
	for u := graph.NodeID(0); u < 4; u++ {
		for v := graph.NodeID(0); v < 4; v++ {
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	for v := graph.NodeID(5); v <= 7; v++ {
		b.AddEdge(4, v)
	}
	g := b.Build()
	g.SetUniformProb(0.1)
	res := runSelect(NewDegreeDiscount(g, 0.1), 2)
	if res.Seeds[1] != 4 {
		t.Fatalf("degree discount picked %v, want the star hub second", res.Seeds)
	}
}

func TestPageRankRanksInfluencers(t *testing.T) {
	// Chain 0->1->2 plus heavy fan-out at 0: node 0 influences the most.
	b := graph.NewBuilder(8)
	for v := graph.NodeID(1); v < 8; v++ {
		b.AddEdgeP(0, v, 1, 0.5)
	}
	b.AddEdgeP(1, 2, 1, 0.5)
	g := b.Build()
	res := runSelect(NewPageRank(g, 0, 0), 1)
	if res.Seeds[0] != 0 {
		t.Fatalf("pagerank picked %v", res.Seeds)
	}
}

func TestIRIESelectsHub(t *testing.T) {
	g := graph.Star(20, 0.2, 0.5)
	res := runSelect(NewIRIE(g, 0, 0, 0), 1)
	if res.Seeds[0] != 0 {
		t.Fatalf("IRIE picked %v", res.Seeds)
	}
}

func TestIRIEDiscountsCoveredRegion(t *testing.T) {
	// Two stars, first bigger: after taking hub A, AP discount must push
	// IRIE to hub B rather than a leaf of star A.
	b := graph.NewBuilder(16)
	for v := graph.NodeID(1); v <= 9; v++ {
		b.AddEdgeP(0, v, 0.9, 0.5)
	}
	for v := graph.NodeID(11); v <= 15; v++ {
		b.AddEdgeP(10, v, 0.9, 0.5)
	}
	g := b.Build()
	res := runSelect(NewIRIE(g, 0, 0, 0), 2)
	if res.Seeds[0] != 0 || res.Seeds[1] != 10 {
		t.Fatalf("IRIE picked %v, want [0 10]", res.Seeds)
	}
}

func TestIRIEQualityVsDegreeOnRandomGraph(t *testing.T) {
	g := graph.ErdosRenyi(300, 2400, rng.New(3))
	g.SetWeightedCascadeProb()
	seedsIRIE := runSelect(NewIRIE(g, 0, 0, 0), 5).Seeds
	seedsDeg := runSelect(NewDegree(g), 5).Seeds
	m := diffusion.NewIC(g)
	ei := diffusion.MonteCarlo(m, seedsIRIE, diffusion.MCOptions{Runs: 4000, Seed: 7})
	ed := diffusion.MonteCarlo(m, seedsDeg, diffusion.MCOptions{Runs: 4000, Seed: 7})
	if ei.Spread < 0.85*ed.Spread {
		t.Fatalf("IRIE spread %v well below degree %v", ei.Spread, ed.Spread)
	}
}

func TestSimpathSpreadOnChain(t *testing.T) {
	// Chain with weights 1: σ(u0) enumerates the full path, = n.
	g := graph.Path(5, 0.5, 0.5) // LT weights = 1 (indeg 1)
	sp := NewSIMPATH(g, 1e-6, 0)
	got := sp.spread(0, nil, nil)
	if math.Abs(got-5) > 1e-9 {
		t.Fatalf("chain spread %v want 5", got)
	}
}

func TestSimpathSpreadMatchesExactLT(t *testing.T) {
	// On tiny DAGs with full enumeration (η→0) SIMPATH's path sum equals
	// the exact LT spread + 1 (it counts the root).
	for trial := 0; trial < 5; trial++ {
		r := rng.Split(11, uint64(trial))
		g := graph.RandomDAG(7, 0.4, 0.3, 0.5, r)
		g.SetDefaultLTWeights()
		sp := NewSIMPATH(g, 1e-12, 0)
		for v := graph.NodeID(0); v < g.NumNodes(); v++ {
			got := sp.spread(v, nil, nil) - 1
			want := diffusion.ExactLTSpread(g, []graph.NodeID{v})
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d node %d: simpath %v vs exact %v", trial, v, got, want)
			}
		}
	}
}

func TestSimpathThroughCounters(t *testing.T) {
	// Diamond 0->{1,2}->3 (weights 1/2 at 3; 1 at 1,2): through[1] equals
	// the mass of paths through node 1.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.Build()
	g.SetDefaultLTWeights() // w(0,1)=1, w(0,2)=1... indeg(1)=1 ⇒ 1; w(·,3)=1/2
	sp := NewSIMPATH(g, 1e-12, 0)
	through := make([]float64, 4)
	total := sp.spread(0, nil, through)
	// paths: 0-1 (1), 0-2 (1), 0-1-3 (.5), 0-2-3 (.5) ⇒ total = 1+1+1+.5+.5 = 4? no:
	// total = 1 (self) + 1 + 1 + 0.5 + 0.5 = 4.
	if math.Abs(total-4) > 1e-9 {
		t.Fatalf("total %v want 4", total)
	}
	// through node 1: paths 0-1 (1) and 0-1-3 (0.5) = 1.5
	if math.Abs(through[1]-1.5) > 1e-9 {
		t.Fatalf("through[1] = %v want 1.5", through[1])
	}
	// σ^{V−1}(0) = 4 − 1.5 = 2.5 (self + 0-2 + 0-2-3)
	if got := total - through[1]; math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("pruned spread %v want 2.5", got)
	}
}

func TestSimpathSelectQuality(t *testing.T) {
	g := graph.ErdosRenyi(150, 900, rng.New(19))
	g.SetDefaultLTWeights()
	res := runSelect(NewSIMPATH(g, 1e-3, 4), 5)
	if len(res.Seeds) != 5 {
		t.Fatalf("seeds %v", res.Seeds)
	}
	m := diffusion.NewLT(g)
	est := diffusion.MonteCarlo(m, res.Seeds, diffusion.MCOptions{Runs: 4000, Seed: 3})
	deg := runSelect(NewDegree(g), 5).Seeds
	estDeg := diffusion.MonteCarlo(m, deg, diffusion.MCOptions{Runs: 4000, Seed: 3})
	if est.Spread < 0.85*estDeg.Spread {
		t.Fatalf("SIMPATH spread %v below degree %v", est.Spread, estDeg.Spread)
	}
	if res.Metrics["enumerations"] <= 0 {
		t.Fatal("missing enumeration metric")
	}
}

func TestSimpathEstimateSpreadLTSeedSet(t *testing.T) {
	// Two disjoint chains: σ({heads}) = total nodes.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	g.SetDefaultLTWeights()
	sp := NewSIMPATH(g, 1e-12, 0)
	got := sp.EstimateSpreadLT([]graph.NodeID{0, 3})
	if math.Abs(got-6) > 1e-9 {
		t.Fatalf("seed-set spread %v want 6", got)
	}
}

func TestSimpathSeedsExcludeEachOther(t *testing.T) {
	// Chain 0→1→2→3: once 0 is a seed, 1's marginal gain shrinks because
	// σ^{V−S}(1) still counts 2,3 but σ(S) pricing removes overlap;
	// SIMPATH should pick the two chain heads of two components instead.
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	g := b.Build()
	g.SetDefaultLTWeights()
	res := runSelect(NewSIMPATH(g, 1e-12, 2), 2)
	s := sortSeeds(res.Seeds)
	if s[0] != 0 || s[1] != 4 {
		t.Fatalf("SIMPATH picked %v, want chain heads {0,4}", res.Seeds)
	}
}

func TestVertexCoverCoversAllEdges(t *testing.T) {
	g := graph.ErdosRenyi(120, 600, rng.New(23))
	sp := NewSIMPATH(g, 1e-3, 4)
	cover := sp.vertexCover()
	for u := graph.NodeID(0); u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(u) {
			if !cover[u] && !cover[v] {
				t.Fatalf("edge (%d,%d) uncovered", u, v)
			}
		}
	}
}
