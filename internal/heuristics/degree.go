// Package heuristics implements the heuristic IM baselines the paper
// benchmarks: IRIE (Jung, Heo, Chen — ICDM'12) for IC/WC, SIMPATH (Goyal,
// Lu, Lakshmanan — ICDM'11) for LT, plus the classical Degree,
// DegreeDiscount (Chen et al. — KDD'09) and PageRank selectors used as
// cheap sanity baselines.
package heuristics

import (
	"container/heap"
	"context"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
)

// Degree picks the k nodes of largest out-degree — the weakest standard
// baseline.
type Degree struct {
	g *graph.Graph
}

// NewDegree returns the degree selector.
func NewDegree(g *graph.Graph) *Degree { return &Degree{g: g} }

// Name implements im.Selector.
func (d *Degree) Name() string { return "Degree" }

// Select implements im.Selector. The top-k scan is effectively instant;
// the per-seed reporting loop still honors cancellation for contract
// uniformity.
func (d *Degree) Select(ctx context.Context, k int) (im.Result, error) {
	res := im.Result{Algorithm: d.Name()}
	if err := im.CheckK(k, d.g.NumNodes()); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)
	for _, v := range graph.TopKByOutDegree(d.g, k) {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		tr.Seed(&res, v)
	}
	tr.Finish(&res)
	return res, nil
}

// DegreeDiscount implements Chen et al.'s degree-discount heuristic for
// IC with uniform propagation probability p: when a neighbor of v is
// selected as a seed, v's effective degree is discounted by
//
//	dd_v = d_v − 2 t_v − (d_v − t_v)·t_v·p,
//
// t_v = number of already-selected neighbors of v.
type DegreeDiscount struct {
	g *graph.Graph
	p float64
}

// NewDegreeDiscount returns the selector; p should equal the uniform IC
// probability the graph uses (paper convention 0.1).
func NewDegreeDiscount(g *graph.Graph, p float64) *DegreeDiscount {
	return &DegreeDiscount{g: g, p: p}
}

// Name implements im.Selector.
func (d *DegreeDiscount) Name() string { return "DegreeDiscount" }

type ddItem struct {
	v     graph.NodeID
	score float64
	index int
}

type ddHeap []*ddItem

func (h ddHeap) Len() int           { return len(h) }
func (h ddHeap) Less(i, j int) bool { return h[i].score > h[j].score }
func (h ddHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *ddHeap) Push(x interface{}) {
	it := x.(*ddItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *ddHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Select implements im.Selector, checking cancellation at every chosen
// seed (the discount update is the per-seed unit of work).
func (d *DegreeDiscount) Select(ctx context.Context, k int) (im.Result, error) {
	g := d.g
	n := g.NumNodes()
	res := im.Result{Algorithm: d.Name()}
	if err := im.CheckK(k, n); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)

	items := make([]*ddItem, n)
	h := make(ddHeap, 0, n)
	tv := make([]int32, n)
	for v := graph.NodeID(0); v < n; v++ {
		if v&0x3FFF == 0 {
			if err := tr.Interrupted(&res); err != nil {
				return res, err
			}
		}
		items[v] = &ddItem{v: v, score: float64(g.OutDegree(v))}
		h = append(h, items[v])
	}
	heap.Init(&h)
	selected := make([]bool, n)
	for len(res.Seeds) < k && h.Len() > 0 {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		it := heap.Pop(&h).(*ddItem)
		selected[it.v] = true
		tr.Seed(&res, it.v)
		// Discount undirected-sense neighbors (out-neighbors suffice on the
		// symmetrized graphs; directed graphs discount influence targets).
		for _, w := range g.OutNeighbors(it.v) {
			if selected[w] {
				continue
			}
			tv[w]++
			dw := float64(g.OutDegree(w))
			t := float64(tv[w])
			items[w].score = dw - 2*t - (dw-t)*t*d.p
			heap.Fix(&h, items[w].index)
		}
	}
	tr.Finish(&res)
	return res, nil
}

var (
	_ im.Selector = (*Degree)(nil)
	_ im.Selector = (*DegreeDiscount)(nil)
)
