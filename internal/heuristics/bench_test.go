package heuristics

import (
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g := graph.BarabasiAlbert(20000, 3, rng.New(1))
	g.SetWeightedCascadeProb()
	g.SetDefaultLTWeights()
	return g
}

func BenchmarkIRIESelect10(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = runSelect(NewIRIE(g, 0, 0, 0), 10)
	}
}

func BenchmarkSimpathSpreadSingle(b *testing.B) {
	g := benchGraph(b)
	sp := NewSIMPATH(g, 1e-3, 4)
	hub := graph.TopKByOutDegree(g, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sp.spread(hub, nil, nil)
	}
}

func BenchmarkSimpathSelect5(b *testing.B) {
	g := graph.BarabasiAlbert(5000, 3, rng.New(3))
	g.SetDefaultLTWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = runSelect(NewSIMPATH(g, 1e-3, 4), 5)
	}
}

func BenchmarkDegreeDiscountSelect50(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = runSelect(NewDegreeDiscount(g, 0.1), 50)
	}
}

func BenchmarkPageRankSelect(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = runSelect(NewPageRank(g, 0, 0), 10)
	}
}
