package heuristics

import (
	"context"
	"sort"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
)

// PageRank selects the k nodes of highest influence-weighted PageRank on
// the *transpose* graph (mass flows against influence edges, so a node
// that influences many high-rank nodes ranks high). A standard cheap
// baseline for IM rank quality.
type PageRank struct {
	g          *graph.Graph
	damping    float64
	iterations int
}

// NewPageRank returns the selector with the conventional damping 0.85 and
// 50 iterations unless overridden (pass 0 to keep defaults).
func NewPageRank(g *graph.Graph, damping float64, iterations int) *PageRank {
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if iterations <= 0 {
		iterations = 50
	}
	return &PageRank{g: g, damping: damping, iterations: iterations}
}

// Name implements im.Selector.
func (p *PageRank) Name() string { return "PageRank" }

// Select implements im.Selector, checking cancellation at each power
// iteration (one O(m) pass) and at each reported seed.
func (p *PageRank) Select(ctx context.Context, k int) (im.Result, error) {
	g := p.g
	n := g.NumNodes()
	res := im.Result{Algorithm: p.Name()}
	if err := im.CheckK(k, n); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)

	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range rank {
		if i&0x3FFF == 0 {
			if err := tr.Interrupted(&res); err != nil {
				return res, err
			}
		}
		rank[i] = inv
	}
	// Mass flows v -> u along the reverse of each influence edge (u,v), so
	// outMass[v] on the reversed graph = Σ_{(u,v)∈E} p(u,v): the total
	// probability mass v distributes back to its influencers.
	outMass := make([]float64, n)
	for u := graph.NodeID(0); u < n; u++ {
		if u&0x3FFF == 0 {
			if err := tr.Interrupted(&res); err != nil {
				return res, err
			}
		}
		ps := g.OutProbs(u)
		nbrs := g.OutNeighbors(u)
		for i := range nbrs {
			outMass[nbrs[i]] += ps[i]
		}
	}
	for it := 0; it < p.iterations; it++ {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		for i := range next {
			next[i] = (1 - p.damping) * inv
		}
		for u := graph.NodeID(0); u < n; u++ {
			nbrs := g.OutNeighbors(u)
			ps := g.OutProbs(u)
			for i, v := range nbrs {
				if outMass[v] > 0 {
					next[u] += p.damping * rank[v] * ps[i] / outMass[v]
				}
			}
		}
		rank, next = next, rank
	}

	ids := make([]graph.NodeID, n)
	for i := range ids {
		if i&0x3FFF == 0 {
			if err := tr.Interrupted(&res); err != nil {
				return res, err
			}
		}
		ids[i] = graph.NodeID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		if rank[ids[i]] != rank[ids[j]] {
			return rank[ids[i]] > rank[ids[j]]
		}
		return ids[i] < ids[j]
	})
	for _, v := range ids[:k] {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		tr.Seed(&res, v)
	}
	tr.Finish(&res)
	return res, nil
}

var _ im.Selector = (*PageRank)(nil)
