package heuristics

import (
	"testing"

	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/im/imtest"
)

// runSelect is this package's shim over the shared imtest.MustSelect —
// the call shape the pre-context package tests were written in.
func runSelect(sel im.Selector, k int) im.Result { return imtest.MustSelect(sel, k) }

// TestHeuristicsCancellation runs the shared conformance suite over every
// heuristic selector (run with -race).
func TestHeuristicsCancellation(t *testing.T) {
	g := imtest.TestGraph(200)
	cases := []struct {
		name string
		mk   func() im.Selector
	}{
		{"irie", func() im.Selector { return NewIRIE(g, 0, 0, 0) }},
		{"simpath", func() im.Selector { return NewSIMPATH(g, 1e-3, 4) }},
		{"degree", func() im.Selector { return NewDegree(g) }},
		{"degree-discount", func() im.Selector { return NewDegreeDiscount(g, 0.1) }},
		{"pagerank", func() im.Selector { return NewPageRank(g, 0, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { imtest.Conformance(t, tc.mk, 4) })
	}
}
