package im

import "testing"

func TestAddMetric(t *testing.T) {
	var r Result
	r.AddMetric("x", 2)
	r.AddMetric("x", 3)
	r.AddMetric("y", 1)
	if r.Metrics["x"] != 5 || r.Metrics["y"] != 1 {
		t.Fatalf("metrics %v", r.Metrics)
	}
}

func TestValidateK(t *testing.T) {
	ValidateK(1, 10)  // ok
	ValidateK(10, 10) // ok: boundary
	for _, c := range []struct{ k, n int }{{0, 5}, {-1, 5}, {6, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ValidateK(%d,%d) did not panic", c.k, c.n)
				}
			}()
			ValidateK(c.k, int32(c.n))
		}()
	}
}
