package im

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAddMetric(t *testing.T) {
	var r Result
	r.AddMetric("x", 2)
	r.AddMetric("x", 3)
	r.AddMetric("y", 1)
	if r.Metrics["x"] != 5 || r.Metrics["y"] != 1 {
		t.Fatalf("metrics %v", r.Metrics)
	}
}

func TestCheckK(t *testing.T) {
	if err := CheckK(1, 10); err != nil {
		t.Fatalf("CheckK(1,10) = %v", err)
	}
	if err := CheckK(10, 10); err != nil { // boundary
		t.Fatalf("CheckK(10,10) = %v", err)
	}
	for _, c := range []struct{ k, n int }{{0, 5}, {-1, 5}, {6, 5}} {
		if err := CheckK(c.k, int32(c.n)); err == nil {
			t.Fatalf("CheckK(%d,%d) = nil, want error", c.k, c.n)
		}
	}
}

func TestProgressContextRoundTrip(t *testing.T) {
	if p := ProgressFrom(context.Background()); p != nil {
		t.Fatal("bare context should carry no progress callback")
	}
	var got int
	ctx := WithProgress(context.Background(), func(seedIdx int, seed int32, elapsed time.Duration) {
		got = seedIdx
	})
	p := ProgressFrom(ctx)
	if p == nil {
		t.Fatal("ProgressFrom lost the callback")
	}
	p(7, 0, 0)
	if got != 7 {
		t.Fatalf("callback saw seedIdx %d, want 7", got)
	}
	if WithProgress(context.Background(), nil) != context.Background() {
		t.Fatal("WithProgress(nil) should be a no-op")
	}
}

func TestTrackerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var reports []int
	ctx = WithProgress(ctx, func(seedIdx int, seed int32, elapsed time.Duration) {
		reports = append(reports, seedIdx)
	})
	tr := StartTracker(ctx)
	res := Result{Algorithm: "stub"}
	if err := tr.Interrupted(&res); err != nil {
		t.Fatalf("live context: %v", err)
	}
	tr.Seed(&res, 4)
	tr.Seed(&res, 9)
	if len(res.Seeds) != 2 || len(res.PerSeed) != 2 {
		t.Fatalf("seeds %v perSeed %v", res.Seeds, res.PerSeed)
	}
	if len(reports) != 2 || reports[0] != 0 || reports[1] != 1 {
		t.Fatalf("progress reports %v", reports)
	}
	cancel()
	err := tr.Interrupted(&res)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Interrupted after cancel = %v", err)
	}
	if !res.Partial || res.Took <= 0 {
		t.Fatalf("result not stamped partial: %+v", res)
	}
}
