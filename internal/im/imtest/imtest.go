// Package imtest provides the shared conformance suite every im.Selector
// implementation must pass: invalid budgets surface as errors (never
// panics), a pre-cancelled context stops the selection before any real
// work, and cancellation raised mid-run — from the first progress
// callback — yields a prompt return carrying the partial Result and an
// error wrapping context.Canceled. Each algorithm-family package runs the
// suite under -race in its own tests.
package imtest

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/rng"
)

// Conformance exercises the context contract of a selector. mk must
// return a fresh selector bound to a graph with at least k+1 nodes;
// k should be >= 2 so a mid-run cancellation is observable as a strict
// prefix of the budget.
func Conformance(t *testing.T, mk func() im.Selector, k int) {
	t.Helper()

	t.Run("invalid-k", func(t *testing.T) {
		sel := mk()
		if _, err := sel.Select(context.Background(), 0); err == nil {
			t.Fatalf("%s: Select(0) returned no error", sel.Name())
		}
		if _, err := sel.Select(context.Background(), 1<<30); err == nil {
			t.Fatalf("%s: Select(huge k) returned no error", sel.Name())
		}
	})

	t.Run("pre-cancelled", func(t *testing.T) {
		sel := mk()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := sel.Select(ctx, k)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want wrapped context.Canceled", sel.Name(), err)
		}
		if !res.Partial {
			t.Fatalf("%s: cancelled selection not marked Partial", sel.Name())
		}
		if len(res.Seeds) >= k {
			t.Fatalf("%s: pre-cancelled selection still chose %d/%d seeds", sel.Name(), len(res.Seeds), k)
		}
	})

	t.Run("cancel-mid-run", func(t *testing.T) {
		sel := mk()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		ctx = im.WithProgress(ctx, func(seedIdx int, seed graph.NodeID, elapsed time.Duration) {
			if seedIdx == 0 {
				cancel() // pull the plug as soon as the first seed lands
			}
		})
		res, err := sel.Select(ctx, k)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want wrapped context.Canceled", sel.Name(), err)
		}
		if !res.Partial {
			t.Fatalf("%s: mid-run cancellation not marked Partial", sel.Name())
		}
		if len(res.Seeds) == 0 || len(res.Seeds) >= k {
			t.Fatalf("%s: partial result has %d seeds, want a non-empty strict prefix of %d",
				sel.Name(), len(res.Seeds), k)
		}
		if len(res.PerSeed) != len(res.Seeds) {
			t.Fatalf("%s: PerSeed has %d entries for %d seeds", sel.Name(), len(res.PerSeed), len(res.Seeds))
		}
	})

	t.Run("uncancelled-complete", func(t *testing.T) {
		sel := mk()
		var reported int
		ctx := im.WithProgress(context.Background(), func(seedIdx int, seed graph.NodeID, elapsed time.Duration) {
			reported++
		})
		res, err := sel.Select(ctx, k)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		if res.Partial || len(res.Seeds) != k {
			t.Fatalf("%s: full run partial=%v seeds=%d want %d", sel.Name(), res.Partial, len(res.Seeds), k)
		}
		if reported != k {
			t.Fatalf("%s: progress reported %d seeds, want %d", sel.Name(), reported, k)
		}
	})
}

// MustSelect runs sel.Select with a background context, panicking on the
// configuration errors the context-first Select surfaces — the call
// shape the pre-context package tests were written in. The per-package
// runSelect helpers delegate here so the semantics live in one place.
func MustSelect(sel im.Selector, k int) im.Result {
	res, err := sel.Select(context.Background(), k)
	if err != nil {
		panic(err)
	}
	return res
}

// TestGraph builds a small deterministic BA graph with IC probabilities,
// LT weights, opinions and interactions — enough annotation for every
// selector family to run on.
func TestGraph(n int32) *graph.Graph {
	g := graph.BarabasiAlbert(n, 3, rng.New(1))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	return g
}
