// Package im defines the common contract every influence-maximization
// seed-selection algorithm in this repository implements, together with a
// shared result/statistics type. Keeping the interface in its own package
// lets the paper's algorithms (internal/core), the greedy baselines
// (internal/greedy), the RIS family (internal/ris) and the heuristics
// (internal/heuristics) all plug into one experiment harness.
package im

import (
	"fmt"
	"time"

	"github.com/holisticim/holisticim/internal/graph"
)

// Result reports a seed-selection run.
type Result struct {
	// Algorithm is the selector's Name().
	Algorithm string
	// Seeds are the chosen seed nodes, in selection order.
	Seeds []graph.NodeID
	// Took is the total wall-clock selection time.
	Took time.Duration
	// PerSeed holds cumulative elapsed time after each seed was chosen
	// (len == len(Seeds)); used by the running-time-vs-seeds figures.
	PerSeed []time.Duration
	// Metrics carries algorithm-specific counters, e.g. "simulations" for
	// Monte-Carlo greedy, "rrsets" for TIM+/IMM, "paths" for SIMPATH.
	Metrics map[string]float64
}

// AddMetric accumulates a named counter.
func (r *Result) AddMetric(name string, delta float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] += delta
}

// Selector picks k seed nodes maximizing (expected) spread under some
// model and objective. Implementations must be deterministic given their
// configured master seed.
type Selector interface {
	// Name identifies the algorithm ("EaSyIM", "CELF++", "TIM+", ...).
	Name() string
	// Select returns k seeds. Implementations panic on k <= 0 or k greater
	// than the number of nodes.
	Select(k int) Result
}

// ValidateK panics unless 0 < k <= n, providing a uniform error message
// for all selectors.
func ValidateK(k int, n int32) {
	if k <= 0 || int64(k) > int64(n) {
		panic(fmt.Sprintf("im: invalid seed budget k=%d for n=%d", k, n))
	}
}
