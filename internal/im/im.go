// Package im defines the common contract every influence-maximization
// seed-selection algorithm in this repository implements, together with a
// shared result/statistics type. Keeping the interface in its own package
// lets the paper's algorithms (internal/core), the greedy baselines
// (internal/greedy), the RIS family (internal/ris) and the heuristics
// (internal/heuristics) all plug into one experiment harness and one
// serving layer.
//
// The contract is context-first: Select takes a context.Context and every
// implementation honors cancellation and deadlines at per-seed (and, for
// hot inner loops, per-batch) checkpoints, returning the partial Result
// selected so far with Partial set alongside an error wrapping ctx.Err().
// Callers observe live progress by attaching a Progress callback to the
// context with WithProgress.
package im

import (
	"context"
	"fmt"
	"time"

	"github.com/holisticim/holisticim/internal/graph"
)

// Result reports a seed-selection run.
type Result struct {
	// Algorithm is the selector's Name().
	Algorithm string
	// Seeds are the chosen seed nodes, in selection order.
	Seeds []graph.NodeID
	// Took is the total wall-clock selection time.
	Took time.Duration
	// PerSeed holds cumulative elapsed time after each seed was chosen
	// (len == len(Seeds)); used by the running-time-vs-seeds figures.
	PerSeed []time.Duration
	// Metrics carries algorithm-specific counters, e.g. "simulations" for
	// Monte-Carlo greedy, "rrsets" for TIM+/IMM, "paths" for SIMPATH.
	Metrics map[string]float64
	// Partial marks a selection cut short by context cancellation or
	// deadline expiry: Seeds holds whatever was chosen before the stop
	// (possibly none) and the accompanying error wraps ctx.Err().
	Partial bool
}

// AddMetric accumulates a named counter.
func (r *Result) AddMetric(name string, delta float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] += delta
}

// Selector picks k seed nodes maximizing (expected) spread under some
// model and objective. Implementations must be deterministic given their
// configured master seed.
type Selector interface {
	// Name identifies the algorithm ("EaSyIM", "CELF++", "TIM+", ...).
	Name() string
	// Select returns k seeds. It fails with an error (never a panic) on an
	// invalid budget, and honors ctx: when the context is cancelled or its
	// deadline passes mid-selection, Select returns promptly with the
	// partial Result (Partial set) and an error wrapping ctx.Err().
	Select(ctx context.Context, k int) (Result, error)
}

// CheckK returns an error unless 0 < k <= n, providing a uniform message
// for all selectors.
func CheckK(k int, n int32) error {
	if k <= 0 || int64(k) > int64(n) {
		return fmt.Errorf("im: invalid seed budget k=%d for n=%d", k, n)
	}
	return nil
}

// Progress observes per-seed selection progress: seedIdx is the 0-based
// index of the seed just chosen, seed its node id and elapsed the
// cumulative wall-clock time since Select started. Callbacks run
// synchronously on the selection goroutine and must be fast; they may be
// invoked from Select at any point and must be safe for use from a
// different goroutine than the caller's.
type Progress func(seedIdx int, seed graph.NodeID, elapsed time.Duration)

type progressKey struct{}

// WithProgress returns a context carrying a Progress callback for
// selectors to report each chosen seed to.
func WithProgress(ctx context.Context, p Progress) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, p)
}

// ProgressFrom extracts the Progress callback attached with WithProgress,
// or nil when the context carries none.
func ProgressFrom(ctx context.Context) Progress {
	p, _ := ctx.Value(progressKey{}).(Progress)
	return p
}

// Tracker bundles the per-seed bookkeeping shared by every selector:
// wall-clock timing, progress reporting and cooperative cancellation
// checkpoints. Typical use:
//
//	tr := im.StartTracker(ctx)
//	res := im.Result{Algorithm: s.Name()}
//	for ... {
//		if err := tr.Interrupted(&res); err != nil {
//			return res, err
//		}
//		... pick next seed ...
//		tr.Seed(&res, pick)
//	}
//	tr.Finish(&res)
//	return res, nil
type Tracker struct {
	ctx      context.Context
	progress Progress
	start    time.Time
}

// StartTracker starts timing a selection under ctx.
func StartTracker(ctx context.Context) *Tracker {
	return &Tracker{ctx: ctx, progress: ProgressFrom(ctx), start: time.Now()}
}

// Elapsed returns the wall-clock time since the tracker started.
func (t *Tracker) Elapsed() time.Duration { return time.Since(t.start) }

// Seed records a newly chosen seed into res: appends it to Seeds, stamps
// PerSeed and reports progress when a callback is attached.
func (t *Tracker) Seed(res *Result, seed graph.NodeID) {
	res.Seeds = append(res.Seeds, seed)
	elapsed := t.Elapsed()
	res.PerSeed = append(res.PerSeed, elapsed)
	if t.progress != nil {
		t.progress(len(res.Seeds)-1, seed, elapsed)
	}
}

// Interrupted is the cooperative cancellation checkpoint: when the
// tracker's context is done it marks res partial, stamps Took and returns
// an error wrapping ctx.Err(); otherwise it returns nil.
func (t *Tracker) Interrupted(res *Result) error {
	if err := t.ctx.Err(); err != nil {
		res.Partial = true
		res.Took = t.Elapsed()
		return fmt.Errorf("im: %s interrupted with %d seed(s) selected: %w",
			res.Algorithm, len(res.Seeds), err)
	}
	return nil
}

// Err reports whether the tracker's context is done, for inner loops that
// cannot conveniently thread the Result to Interrupted.
func (t *Tracker) Err() error { return t.ctx.Err() }

// Context returns the context the tracker was started under.
func (t *Tracker) Context() context.Context { return t.ctx }

// Finish stamps the total selection time.
func (t *Tracker) Finish(res *Result) { res.Took = t.Elapsed() }
