package im

import "fmt"

// Backend names an execution strategy the query planner can choose for a
// member of a batch query. The planner (holisticim.PlanQuery) picks one
// per member and records why, so serving layers can route — synchronous
// for sketch-served plans, asynchronous jobs otherwise — without
// re-deriving the decision, and clients can see how their query will run.
type Backend string

// Execution backends.
const (
	// BackendSketch answers from a prebuilt RR-sketch index (milliseconds;
	// no sampling on the request path).
	BackendSketch Backend = "sketch"
	// BackendRIS samples a reverse-reachable-set collection (TIM+/IMM).
	// Batch members sharing one Shared key are served from a single
	// collection sized for the largest k.
	BackendRIS Backend = "ris"
	// BackendMC runs Monte-Carlo simulations (greedy selection families
	// and spread estimates).
	BackendMC Backend = "mc"
	// BackendScore runs the paper's score-vector algorithms (EaSyIM/OSIM).
	BackendScore Backend = "score"
	// BackendHeuristic runs a simulation-free heuristic (degree, IRIE,
	// SIMPATH, PageRank, ...).
	BackendHeuristic Backend = "heuristic"
)

// PlanStep is the planned execution of one query member.
type PlanStep struct {
	// Member indexes the query member (k value or seed set) this step
	// serves, in request order.
	Member int `json:"member"`
	// Task is "select" or "estimate".
	Task string `json:"task"`
	// Algorithm is the selection algorithm (select tasks) or the
	// estimator objective (estimate tasks).
	Algorithm string `json:"algorithm,omitempty"`
	// Backend is the execution strategy chosen for this member.
	Backend Backend `json:"backend"`
	// Shared, when set, keys the state this member shares with every
	// other step carrying the same value — one RR collection, one
	// memoized greedy order, or one diffusion model serving them all.
	Shared string `json:"shared,omitempty"`
	// Reason says why the planner chose this backend.
	Reason string `json:"reason"`
}

// Plan is the planner's routing decision for a whole query: one step per
// member. Serving layers include it in responses so a client can always
// ask "why was my query executed this way".
type Plan struct {
	Steps []PlanStep `json:"steps"`
}

// SketchOnly reports whether every member is served from a prebuilt
// sketch index — the condition under which a serving layer may run the
// query synchronously on the request path.
func (p Plan) SketchOnly() bool {
	if len(p.Steps) == 0 {
		return false
	}
	for _, s := range p.Steps {
		if s.Backend != BackendSketch {
			return false
		}
	}
	return true
}

// Backends returns the distinct backends the plan uses, in first-use
// order.
func (p Plan) Backends() []Backend {
	var out []Backend
	seen := make(map[Backend]bool, 4)
	for _, s := range p.Steps {
		if !seen[s.Backend] {
			seen[s.Backend] = true
			out = append(out, s.Backend)
		}
	}
	return out
}

// Explain renders the plan as one human-readable line per step.
func (p Plan) Explain() []string {
	out := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		line := fmt.Sprintf("member %d: %s", s.Member, s.Task)
		if s.Algorithm != "" {
			line += fmt.Sprintf(" %s", s.Algorithm)
		}
		line += fmt.Sprintf(" via %s", s.Backend)
		if s.Shared != "" {
			line += fmt.Sprintf(" [shared %s]", s.Shared)
		}
		line += fmt.Sprintf(": %s", s.Reason)
		out[i] = line
	}
	return out
}
