package admission

// Priority is a request's service class. Smaller is more urgent: the
// job manager drains all interactive work before standard, and all
// standard before batch, so a flood of cold Monte-Carlo jobs cannot
// FIFO ahead of the millisecond sketch path the paper's design exists
// to keep fast.
type Priority int

// The three service classes, in dispatch order.
const (
	// Interactive is the sketch/heuristic fast path: work measured in
	// milliseconds that a human is waiting on.
	Interactive Priority = iota
	// Standard is RIS-backed sampling work: seconds, not milliseconds,
	// but still latency-sensitive.
	Standard
	// Batch is cold Monte-Carlo and other unbounded work: throughput
	// matters, latency does not.
	Batch
	// NumPriorities sizes per-priority arrays.
	NumPriorities int = iota
)

// String returns the wire form of p ("interactive", "standard",
// "batch"); out-of-range values print as "standard" so a corrupted
// value can never panic a metric label.
func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	default:
		return "standard"
	}
}

// ParsePriority maps a wire name onto its Priority. ok is false for
// anything unrecognized, including "".
func ParsePriority(s string) (Priority, bool) {
	switch s {
	case "interactive":
		return Interactive, true
	case "standard":
		return Standard, true
	case "batch":
		return Batch, true
	}
	return Standard, false
}

// ForBackend derives the service class of one plan step from the
// backend the planner routed it to: the sketch index and the degree
// heuristic answer in milliseconds (interactive), RIS sampling and
// score estimation in seconds (standard), cold Monte Carlo in minutes
// (batch). Unknown backends are standard — neither trusted with the
// fast lane nor punished to the back of it.
func ForBackend(backend string) Priority {
	switch backend {
	case "sketch", "heuristic":
		return Interactive
	case "mc":
		return Batch
	default:
		return Standard
	}
}

// Worst folds the service classes of a multi-step plan into the class
// of the whole job: one cold member makes the job batch, because the
// queue slot is held for as long as the slowest member runs.
func Worst(ps ...Priority) Priority {
	worst := Interactive
	for _, p := range ps {
		if p > worst {
			worst = p
		}
	}
	return worst
}

// Demote applies a client's PriorityHeader wish to the planner-derived
// class: the request may only move toward batch, never toward
// interactive. Unparseable wishes keep the derived class.
func Demote(derived Priority, wish string) Priority {
	if p, ok := ParsePriority(wish); ok && p > derived {
		return p
	}
	return derived
}
