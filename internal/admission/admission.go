// Package admission is the QoS layer every request crosses before it
// can put work on the job manager: per-client token-bucket rate
// limiting, priority classes derived from the planner's backend choice,
// and the per-backend cost model behind deadline-aware load shedding.
//
// The package is deliberately inert over the wire: it never writes an
// HTTP response. Callers (the service handlers, the cluster router)
// translate its verdicts into the uniform JSON error envelope plus a
// Retry-After header, so the writeError-only discipline the errenvelope
// analyzer enforces holds here by construction.
package admission

import (
	"net"
	"net/http"
)

// ClientIDHeader names the caller for rate-limiting and request
// accounting. The router forwards it verbatim to replicas so a client's
// budget is one budget regardless of which replica serves it; requests
// without the header fall back to the remote address.
const ClientIDHeader = "X-Client-ID"

// PriorityHeader lets a client demote its own request (batch ETL jobs
// tagging themselves "batch" so they never compete with dashboards).
// Promotion is refused: the planner-derived class is the ceiling,
// otherwise every client would claim "interactive".
const PriorityHeader = "X-Priority"

// ClientID identifies the caller of r: the X-Client-ID header when set,
// else the host part of the remote address (so untagged clients are
// still isolated from each other rather than pooled into one bucket).
func ClientID(r *http.Request) string {
	if id := r.Header.Get(ClientIDHeader); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
