package admission

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// LimiterConfig sizes a Limiter. RPS <= 0 disables rate limiting
// entirely (NewLimiter returns nil, and a nil *Limiter admits
// everything), so binaries can plumb the flag through unconditionally.
type LimiterConfig struct {
	// RPS is each client's sustained request budget per second.
	RPS float64
	// Burst is the bucket capacity — how many requests a previously
	// idle client may fire back to back. Defaults to max(RPS, 1).
	Burst float64
	// MaxClients bounds the per-client bucket table; the least recently
	// seen client is evicted past it (default 4096). An evicted client
	// that returns starts with a full bucket — the table bounds memory
	// against client-id churn, not adversaries.
	MaxClients int
}

// Limiter is an LRU-bounded table of per-client token buckets. A nil
// Limiter admits everything, so callers never branch on configuration.
type Limiter struct {
	rps        float64
	burst      float64
	maxClients int

	mu      sync.Mutex
	clients map[string]*list.Element // -> *bucket, via lru
	lru     *list.List               // front = most recently seen

	allowed   atomic.Int64
	throttled atomic.Int64
}

// bucket is one client's token state. Guarded by Limiter.mu: buckets
// are touched only inside Allow, and the LRU list must move in the
// same critical section anyway.
type bucket struct {
	client string
	tokens float64
	last   time.Time
}

// NewLimiter builds a Limiter, or nil when cfg.RPS <= 0 (disabled).
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.RPS <= 0 {
		return nil
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.RPS
	}
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 4096
	}
	return &Limiter{
		rps:        cfg.RPS,
		burst:      cfg.Burst,
		maxClients: cfg.MaxClients,
		clients:    make(map[string]*list.Element),
		lru:        list.New(),
	}
}

// Allow spends one token from client's bucket. When the bucket is
// empty it refuses and reports how long until a token accrues — the
// Retry-After the caller should surface. now is injected so tests are
// deterministic.
func (l *Limiter) Allow(client string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var b *bucket
	if el, hit := l.clients[client]; hit {
		b = el.Value.(*bucket)
		l.lru.MoveToFront(el)
		// Refill for the idle interval, capped at the burst size.
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * l.rps
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
		}
		b.last = now
	} else {
		b = &bucket{client: client, tokens: l.burst, last: now}
		l.clients[client] = l.lru.PushFront(b)
		if l.lru.Len() > l.maxClients {
			oldest := l.lru.Back()
			l.lru.Remove(oldest)
			delete(l.clients, oldest.Value.(*bucket).client)
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		l.allowed.Add(1)
		return true, 0
	}
	l.throttled.Add(1)
	// Time until the bucket holds one whole token again.
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / l.rps * float64(time.Second))
}

// Allowed returns the number of admitted requests.
func (l *Limiter) Allowed() int64 {
	if l == nil {
		return 0
	}
	return l.allowed.Load()
}

// Throttled returns the number of refused requests.
func (l *Limiter) Throttled() int64 {
	if l == nil {
		return 0
	}
	return l.throttled.Load()
}

// Clients returns the number of tracked client buckets.
func (l *Limiter) Clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lru.Len()
}
