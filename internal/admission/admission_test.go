package admission

import (
	"net/http/httptest"
	"testing"
	"time"
)

func TestClientID(t *testing.T) {
	r := httptest.NewRequest("POST", "/v2/query", nil)
	r.RemoteAddr = "10.1.2.3:40000"
	if got := ClientID(r); got != "10.1.2.3" {
		t.Fatalf("ClientID from remote addr = %q, want 10.1.2.3", got)
	}
	r.Header.Set(ClientIDHeader, "tenant-a")
	if got := ClientID(r); got != "tenant-a" {
		t.Fatalf("ClientID with header = %q, want tenant-a", got)
	}
	r.Header.Del(ClientIDHeader)
	r.RemoteAddr = "unix-socket" // no port: fall back to the raw address
	if got := ClientID(r); got != "unix-socket" {
		t.Fatalf("ClientID from portless addr = %q", got)
	}
}

func TestPriorityDerivation(t *testing.T) {
	cases := []struct {
		backend string
		want    Priority
	}{
		{"sketch", Interactive},
		{"heuristic", Interactive},
		{"ris", Standard},
		{"score", Standard},
		{"mc", Batch},
		{"", Standard},
		{"future-backend", Standard},
	}
	for _, c := range cases {
		if got := ForBackend(c.backend); got != c.want {
			t.Errorf("ForBackend(%q) = %v, want %v", c.backend, got, c.want)
		}
	}
	if got := Worst(Interactive, Batch, Standard); got != Batch {
		t.Fatalf("Worst = %v, want Batch", got)
	}
	if got := Worst(); got != Interactive {
		t.Fatalf("Worst() = %v, want Interactive", got)
	}
}

func TestPriorityWire(t *testing.T) {
	for _, p := range []Priority{Interactive, Standard, Batch} {
		back, ok := ParsePriority(p.String())
		if !ok || back != p {
			t.Fatalf("ParsePriority(%q) = %v, %v", p.String(), back, ok)
		}
	}
	if _, ok := ParsePriority("vip"); ok {
		t.Fatal("ParsePriority accepted an unknown class")
	}
	if Priority(99).String() != "standard" {
		t.Fatal("out-of-range Priority must label as standard")
	}
}

func TestDemote(t *testing.T) {
	if got := Demote(Standard, "batch"); got != Batch {
		t.Fatalf("Demote(standard, batch) = %v", got)
	}
	// Promotion is refused: the derived class is the ceiling.
	if got := Demote(Batch, "interactive"); got != Batch {
		t.Fatalf("Demote(batch, interactive) = %v, want Batch", got)
	}
	if got := Demote(Standard, ""); got != Standard {
		t.Fatalf("Demote(standard, \"\") = %v", got)
	}
	if got := Demote(Interactive, "nonsense"); got != Interactive {
		t.Fatalf("Demote(interactive, nonsense) = %v", got)
	}
}

func TestLimiterBucket(t *testing.T) {
	l := NewLimiter(LimiterConfig{RPS: 1, Burst: 2})
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a", now); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.Allow("a", now)
	if ok {
		t.Fatal("third instantaneous request must be throttled")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}
	// Another client is untouched by a's exhaustion.
	if ok, _ := l.Allow("b", now); !ok {
		t.Fatal("client b must have its own bucket")
	}
	// One second refills one token.
	if ok, _ := l.Allow("a", now.Add(time.Second)); !ok {
		t.Fatal("refill after 1s must admit")
	}
	// A long idle period refills to burst, not beyond.
	later := now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a", later); !ok {
			t.Fatalf("post-idle burst request %d refused", i)
		}
	}
	if ok, _ := l.Allow("a", later); ok {
		t.Fatal("idle refill must cap at burst")
	}
	if l.Allowed() == 0 || l.Throttled() == 0 {
		t.Fatalf("counters: allowed=%d throttled=%d", l.Allowed(), l.Throttled())
	}
}

func TestLimiterLRUEviction(t *testing.T) {
	l := NewLimiter(LimiterConfig{RPS: 100, Burst: 1, MaxClients: 2})
	now := time.Unix(1000, 0)
	l.Allow("a", now)
	l.Allow("b", now)
	if n := l.Clients(); n != 2 {
		t.Fatalf("Clients() = %d, want 2", n)
	}
	l.Allow("c", now) // evicts a, the least recently seen
	if n := l.Clients(); n != 2 {
		t.Fatalf("Clients() after eviction = %d, want 2", n)
	}
	// a returns with a fresh (full) bucket: admitted despite having
	// spent its token before eviction.
	if ok, _ := l.Allow("a", now); !ok {
		t.Fatal("evicted client must restart with a full bucket")
	}
	// b was evicted to make room for a's return; c is still tracked and
	// its spent bucket survived.
	if ok, _ := l.Allow("c", now); ok {
		t.Fatal("c's bucket must have survived a's reinsertion")
	}
}

func TestLimiterDisabled(t *testing.T) {
	var l *Limiter // nil: rate limiting off
	if l != NewLimiter(LimiterConfig{}) {
		t.Fatal("RPS<=0 must build a nil limiter")
	}
	if ok, retry := l.Allow("anyone", time.Now()); !ok || retry != 0 {
		t.Fatal("nil limiter must admit everything")
	}
	if l.Allowed() != 0 || l.Throttled() != 0 || l.Clients() != 0 {
		t.Fatal("nil limiter counters must read zero")
	}
}

func TestCostModel(t *testing.T) {
	c := NewCostModel()
	if got := c.Estimate("mc"); got != 0 {
		t.Fatalf("cold Estimate = %v, want 0", got)
	}
	c.Observe("mc", 8)
	if got := c.Estimate("mc"); got != 8 {
		t.Fatalf("first observation Estimate = %v, want 8", got)
	}
	c.Observe("mc", 4) // EWMA α=1/4: 8 + (4-8)/4 = 7
	if got := c.Estimate("mc"); got != 7 {
		t.Fatalf("EWMA Estimate = %v, want 7", got)
	}
	c.Observe("sketch", 0.001)
	if got := c.Estimate("sketch"); got != 0.001 {
		t.Fatalf("per-backend isolation broken: %v", got)
	}
	var nilModel *CostModel
	nilModel.Observe("mc", 1) // must not panic
	if nilModel.Estimate("mc") != 0 {
		t.Fatal("nil model must estimate zero")
	}
}
