package admission

import "sync"

// CostModel predicts how long a job will run from the backend its plan
// routed it to, fed by the same completed-query observations that back
// the im_query_duration_seconds histogram. It is an EWMA per backend
// (α = 1/4, like the job manager's queue-wait estimate): cheap, always
// current, and biased toward recent behavior — exactly what admission
// needs to refuse a request whose deadline cannot survive the queue.
//
// A nil CostModel estimates zero for everything, so callers never
// branch on configuration.
type CostModel struct {
	mu  sync.Mutex
	avg map[string]float64 // backend -> EWMA run seconds
}

// NewCostModel returns an empty model.
func NewCostModel() *CostModel {
	return &CostModel{avg: make(map[string]float64)}
}

// Observe folds one completed run of backend into its estimate.
func (c *CostModel) Observe(backend string, seconds float64) {
	if c == nil || backend == "" || seconds < 0 {
		return
	}
	c.mu.Lock()
	if old, ok := c.avg[backend]; ok {
		c.avg[backend] = old + (seconds-old)/4
	} else {
		c.avg[backend] = seconds
	}
	c.mu.Unlock()
}

// Estimate predicts the run seconds of one job on backend. Zero until
// the backend has completed at least one run — a cold model never
// sheds, mirroring the manager's cold-pool rule.
func (c *CostModel) Estimate(backend string) float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.avg[backend]
}
