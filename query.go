package holisticim

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/sketch"
)

// Task names what a Query asks for.
type Task string

// Query tasks.
const (
	// TaskSelect picks seed sets: one member per requested k.
	TaskSelect Task = "select"
	// TaskEstimate evaluates spreads: one member per requested seed set.
	TaskEstimate Task = "estimate"
)

// Objective names what an estimate Query measures.
type Objective string

// Estimate objectives.
const (
	// ObjectiveSpread estimates σ(S), the expected activations beyond the
	// seeds.
	ObjectiveSpread Objective = "spread"
	// ObjectiveOpinion estimates the opinion-aware spreads (Defs. 6-7).
	ObjectiveOpinion Objective = "opinion"
)

// Planner types, re-exported from the internal contract package so
// serving layers and clients share one vocabulary.
type (
	// Plan is the planner's routing decision for a Query: one PlanStep
	// per member, with an Explain() trace of why each backend was chosen.
	Plan = im.Plan
	// PlanStep is the planned execution of one query member.
	PlanStep = im.PlanStep
	// Backend names an execution strategy (sketch, ris, mc, score,
	// heuristic).
	Backend = im.Backend
)

// Execution backends a Plan can choose.
const (
	BackendSketch    = im.BackendSketch
	BackendRIS       = im.BackendRIS
	BackendMC        = im.BackendMC
	BackendScore     = im.BackendScore
	BackendHeuristic = im.BackendHeuristic
)

// Query is the one typed request the whole system serves: a task, an
// algorithm (select) or objective (estimate), one or many k values or
// seed sets, and Options. Batch members execute against shared state —
// one RR collection or sketch order serves every k ≤ max(Ks), one
// diffusion model serves every estimated seed set — so a batch costs
// little more than its largest member.
//
// The zero values infer sensibly: an empty Task means select unless
// SeedSets is set; an empty Objective follows Options.Model (opinion for
// the opinion-aware models, spread otherwise).
type Query struct {
	// Task is "select" or "estimate" (inferred when empty).
	Task Task
	// Algorithm picks the selection algorithm (select tasks).
	Algorithm Algorithm
	// Objective picks what an estimate measures (estimate tasks).
	Objective Objective
	// K is the single seed budget; Ks, when set, asks for a batch (one
	// member per value, served from shared state) and takes precedence.
	K  int
	Ks []int
	// SeedSets are the seed sets to estimate, one member each.
	SeedSets [][]NodeID
	// Options tunes models, budgets and backends exactly as in the
	// per-task entrypoints. Lifecycle knobs (Progress, Deadline, Sketch,
	// Workers) keep their usual exclusion from fingerprints.
	Options Options
	// OnMember, when set, observes each member as its result completes —
	// the batch-level counterpart of Options.Progress. Excluded from
	// Fingerprint. Callbacks run synchronously on the executing goroutine.
	OnMember func(member int, m Member)
}

// Member is one completed unit of an Answer: a selection for one k, or
// an estimate for one seed set.
type Member struct {
	// K is the member's seed budget (select tasks).
	K int
	// Seeds is the evaluated input seed set (estimate tasks).
	Seeds []NodeID
	// Result is the selection outcome (select tasks).
	Result *Result
	// Estimate is the spread estimate (estimate tasks).
	Estimate *Estimate
}

// Answer is Run's response: the executed Plan and one Member per query
// member, in request order. On cancellation or failure the members
// completed (or partially completed) before the stop are retained
// alongside the returned error.
type Answer struct {
	Plan    Plan
	Members []Member
	Took    time.Duration
}

// normalized resolves the query's inferred fields and option defaults
// without needing the graph: task inference, single-K promotion,
// objective inference and Options.withDefaults. It does not validate
// budgets or seed ids (those need n).
func (q Query) normalized() (Query, error) {
	switch q.Task {
	case "":
		if len(q.SeedSets) > 0 {
			q.Task = TaskEstimate
		} else {
			q.Task = TaskSelect
		}
	case TaskSelect, TaskEstimate:
	default:
		return q, fmt.Errorf("holisticim: unknown task %q", q.Task)
	}
	switch q.Task {
	case TaskSelect:
		if len(q.Ks) == 0 {
			q.Ks = []int{q.K}
		} else {
			q.Ks = append([]int(nil), q.Ks...)
		}
		if _, ok := backendClass(q.Algorithm); !ok {
			return q, fmt.Errorf("holisticim: unknown algorithm %q", q.Algorithm)
		}
		q.Options = q.Options.withDefaults(opinionAware(q.Algorithm))
	case TaskEstimate:
		if len(q.SeedSets) == 0 {
			return q, fmt.Errorf("holisticim: estimate query needs at least one seed set")
		}
		if q.Objective == "" {
			if q.Options.Model.OpinionAware() {
				q.Objective = ObjectiveOpinion
			} else {
				q.Objective = ObjectiveSpread
			}
		}
		switch q.Objective {
		case ObjectiveSpread, ObjectiveOpinion:
		default:
			return q, fmt.Errorf("holisticim: unknown objective %q", q.Objective)
		}
		q.Options = q.Options.withDefaults(q.Objective == ObjectiveOpinion)
	}
	return q, nil
}

// backendClass maps a selection algorithm to the backend family that
// executes it cold (without a sketch).
func backendClass(alg Algorithm) (Backend, bool) {
	switch alg {
	case AlgTIMPlus, AlgIMM:
		return BackendRIS, true
	case AlgGreedy, AlgCELFPP, AlgModifiedGreedy, AlgStaticGreedy:
		return BackendMC, true
	case AlgEaSyIM, AlgOSIM:
		return BackendScore, true
	case AlgIRIE, AlgSIMPATH, AlgDegree, AlgDegreeDiscount, AlgPageRank:
		return BackendHeuristic, true
	}
	return "", false
}

// Fingerprint returns the canonical identity of the results this query
// would produce: defaults are resolved first, and fields that cannot
// change a completed result — Workers, Progress, OnMember, Deadline and
// the attached Sketch (serving layers must never cache sketch-served
// answers under the cold key) — are excluded. A single-k select query
// fingerprints identically to Options.Fingerprint(alg, k), so v1 and v2
// serving surfaces share cache entries for equivalent requests.
func (q Query) Fingerprint() string {
	n, err := q.normalized()
	if err != nil {
		return "invalid;" + err.Error()
	}
	c := n.Options
	switch n.Task {
	case TaskEstimate:
		return fmt.Sprintf("task=estimate;obj=%s;sets=%s;model=%s;lambda=%g;mc=%d;seed=%d",
			n.Objective, hashSeedSets(n.SeedSets), c.Model, c.Lambda, c.MCRuns, c.Seed)
	default:
		if len(n.Ks) == 1 {
			return n.Options.Fingerprint(n.Algorithm, n.Ks[0])
		}
		return fmt.Sprintf("alg=%s;ks=%s;model=%s;l=%d;lambda=%g;eps=%g;mc=%d;seed=%d;thetacap=%d",
			n.Algorithm, joinInts(n.Ks), c.Model, c.PathLength, c.Lambda, c.Epsilon, c.MCRuns, c.Seed, c.TIMThetaCap)
	}
}

func joinInts(ks []int) string {
	parts := make([]string, len(ks))
	for i, k := range ks {
		parts[i] = strconv.Itoa(k)
	}
	return strings.Join(parts, ",")
}

// hashSeedSets digests the seed sets so estimate fingerprints stay
// bounded regardless of set size.
func hashSeedSets(sets [][]NodeID) string {
	parts := make([]string, len(sets))
	for i, set := range sets {
		h := fnv.New64a()
		var buf [4]byte
		for _, v := range set {
			buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			h.Write(buf[:])
		}
		parts[i] = fmt.Sprintf("%d:%016x", len(set), h.Sum64())
	}
	return strings.Join(parts, ",")
}

// PlanQuery validates q against g and returns the execution Plan Run
// would follow — which backend serves each member and why — without
// executing anything. Serving layers use it to route (sketch-only plans
// can run synchronously on a request path) and to show clients how their
// query will execute.
func PlanQuery(g *Graph, q Query) (Plan, error) {
	_, plan, err := planQuery(g, q)
	return plan, err
}

// planQuery normalizes, validates and plans q. The returned Query has
// every default resolved.
func planQuery(g *Graph, q Query) (Query, Plan, error) {
	if g == nil {
		return q, Plan{}, fmt.Errorf("holisticim: nil graph")
	}
	n, err := q.normalized()
	if err != nil {
		return n, Plan{}, err
	}
	o := n.Options
	if _, err := NewModel(g, o.Model); err != nil {
		return n, Plan{}, err
	}
	var plan Plan
	switch n.Task {
	case TaskSelect:
		for _, k := range n.Ks {
			if k <= 0 || int64(k) > int64(g.NumNodes()) {
				return n, Plan{}, fmt.Errorf("holisticim: invalid k=%d for n=%d", k, g.NumNodes())
			}
		}
		plan = planSelect(g, n)
	case TaskEstimate:
		plan = planEstimate(g, n)
	}
	return n, plan, nil
}

// planSelect chooses the backend serving a (validated) select query.
// All members of a select batch share one backend: the sketch order, RR
// collection or selector run at max(Ks) serves every smaller budget as a
// greedy prefix.
func planSelect(g *Graph, q Query) Plan {
	o := q.Options
	alg := string(q.Algorithm)
	cold, _ := backendClass(q.Algorithm)
	kmax := maxInts(q.Ks)
	batch := len(q.Ks) > 1

	backend := cold
	shared := ""
	var reason string
	switch {
	case cold == BackendRIS && sketchSelector(o, g, risKindFor(o.Model)) != nil:
		backend = BackendSketch
		shared = "sketch"
		reason = fmt.Sprintf("prebuilt RR-sketch index matches (graph, %q semantics, ε=%g, seed=%d); served from the memoized greedy order",
			o.Model.RRSemantics(), o.Epsilon, o.Seed)
	case cold == BackendRIS:
		reason = fmt.Sprintf("cold %s run: RR sets sampled on demand", alg)
		if batch {
			shared = fmt.Sprintf("rr-collection(kmax=%d)", kmax)
			reason = fmt.Sprintf("batch of %d budgets amortizes one RR collection sized for kmax=%d; smaller budgets are greedy prefixes", len(q.Ks), kmax)
		}
		if o.Sketch != nil && o.TIMThetaCap != 0 {
			reason += fmt.Sprintf(" (θ cap %d opts out of the attached sketch)", o.TIMThetaCap)
		} else if o.Sketch != nil {
			reason += " (attached sketch does not match the graph content — likely awaiting repair after a mutation — so the cold path serves)"
		}
	case cold == BackendMC:
		reason = fmt.Sprintf("simulation-driven selection (%d Monte-Carlo runs per evaluation)", o.MCRuns)
	case cold == BackendScore:
		reason = fmt.Sprintf("score-vector selection (path length l=%d)", o.PathLength)
	default:
		reason = "simulation-free heuristic"
	}
	if batch && backend != BackendSketch && cold != BackendRIS {
		shared = fmt.Sprintf("selector(kmax=%d)", kmax)
		reason += fmt.Sprintf("; one run at kmax=%d serves every smaller budget as a greedy prefix", kmax)
	}
	steps := make([]PlanStep, len(q.Ks))
	for i := range q.Ks {
		steps[i] = PlanStep{
			Member: i, Task: string(TaskSelect), Algorithm: alg,
			Backend: backend, Shared: shared, Reason: reason,
		}
	}
	return Plan{Steps: steps}
}

// planEstimate chooses the backend serving a (validated) estimate query.
func planEstimate(g *Graph, q Query) Plan {
	o := q.Options
	sketchServed := q.Objective == ObjectiveOpinion && SketchServedEstimate(g, o)
	backend := BackendMC
	shared := ""
	var reason string
	switch {
	case sketchServed:
		backend = BackendSketch
		shared = "sketch"
		reason = "opinion-weighted RR sketch answers Def. 6-7 estimates without Monte Carlo"
	default:
		reason = fmt.Sprintf("Monte-Carlo estimate (%d runs, model %s)", o.MCRuns, o.Model)
		if len(q.SeedSets) > 1 {
			shared = fmt.Sprintf("model(%s)", o.Model)
			reason += fmt.Sprintf("; %d seed sets share one diffusion model setup", len(q.SeedSets))
		}
	}
	steps := make([]PlanStep, len(q.SeedSets))
	for i := range q.SeedSets {
		steps[i] = PlanStep{
			Member: i, Task: string(TaskEstimate), Algorithm: string(q.Objective),
			Backend: backend, Shared: shared, Reason: reason,
		}
	}
	return Plan{Steps: steps}
}

func maxInts(ks []int) int {
	m := 0
	for _, k := range ks {
		if k > m {
			m = k
		}
	}
	return m
}

// Run plans and executes q against g: every batch member runs against
// shared state (one sketch order or RR collection serves each k ≤
// max(Ks); estimates share one diffusion model), per-seed progress
// streams through Options.Progress and per-member completion through
// q.OnMember, and the returned Answer carries the executed Plan. On
// cancellation or deadline expiry the members completed so far — the
// interrupted one partially — come back alongside an error wrapping
// ctx.Err(). Every per-task entrypoint (SelectSeedsContext, the
// estimators) is a thin wrapper over Run.
func Run(ctx context.Context, g *Graph, q Query) (Answer, error) {
	nq, plan, err := planQuery(g, q)
	if err != nil {
		return Answer{Plan: plan}, err
	}
	ans := Answer{Plan: plan, Members: make([]Member, 0, len(plan.Steps))}
	o := nq.Options
	if o.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Deadline)
		defer cancel()
	}
	if o.Progress != nil {
		ctx = im.WithProgress(ctx, o.Progress)
	}
	start := time.Now()
	switch nq.Task {
	case TaskSelect:
		err = runSelect(ctx, g, nq, &ans)
	default:
		err = runEstimate(ctx, g, nq, &ans)
	}
	ans.Took = time.Since(start)
	return ans, err
}

// emitSelect appends (and announces) the member for q.Ks[i].
func emitSelect(q Query, ans *Answer, i int, res Result) {
	m := Member{K: q.Ks[i], Result: &res}
	ans.Members = append(ans.Members, m)
	if q.OnMember != nil {
		q.OnMember(i, m)
	}
}

// runSelect executes a planned select query.
func runSelect(ctx context.Context, g *Graph, q Query, ans *Answer) error {
	o := q.Options
	ks := q.Ks
	backend := ans.Plan.Steps[0].Backend

	// Sketch backend: the index's memoized order serves any k; a batch
	// rides SelectPrefixes so every member comes from one settled sample.
	if backend == BackendSketch {
		if len(ks) == 1 {
			res, err := o.Sketch.Select(ctx, ks[0])
			emitSelect(q, ans, 0, res)
			return err
		}
		results, err := o.Sketch.SelectPrefixes(ctx, ks)
		for i, r := range results {
			emitSelect(q, ans, i, r)
		}
		return err
	}

	// Cold RIS batch: build one ephemeral index sized for kmax — the
	// IMM sampling phases run once — and serve every budget from it.
	if backend == BackendRIS && len(ks) > 1 {
		idx, err := sketch.Build(ctx, g, sketch.Params{
			Kind:    risKindFor(o.Model),
			Epsilon: o.Epsilon,
			Seed:    o.Seed,
			BuildK:  maxInts(ks),
			Workers: o.Workers,
			MaxSets: o.TIMThetaCap,
		})
		if err != nil {
			return err
		}
		results, err := idx.SelectPrefixes(ctx, ks)
		for i, r := range results {
			emitSelect(q, ans, i, r)
		}
		return err
	}

	// Everything else runs the algorithm's own selector once, at kmax for
	// a batch: all remaining selectors are incrementally greedy (or
	// score-ranked), so the k-prefix of a kmax run is exactly the k-run.
	sel, err := newSelector(g, o, q.Algorithm)
	if err != nil {
		return err
	}
	full, err := sel.Select(ctx, maxInts(ks))
	if len(ks) == 1 {
		emitSelect(q, ans, 0, full)
		return err
	}
	for i, k := range ks {
		emitSelect(q, ans, i, prefixOf(full, k))
	}
	return err
}

// prefixOf slices the k-prefix of a full selection run. A prefix within
// the selected seeds is a complete result in its own right (the shared
// selectors are incrementally greedy); a budget beyond what the —
// possibly interrupted — run selected comes back Partial. Each member
// gets its own copy of the run's Metrics, tagged "batch_prefix": the
// counters describe the shared kmax run (an algorithm's spread estimate
// or objective value cannot be recomputed per prefix without paying for
// the selection again), and the tag says so on the wire — mirroring the
// sketch backend's marker.
func prefixOf(full Result, k int) Result {
	if k >= len(full.Seeds) {
		return full
	}
	r := Result{
		Algorithm: full.Algorithm,
		Seeds:     full.Seeds[:k:k],
		PerSeed:   full.PerSeed[:min(k, len(full.PerSeed)):k],
	}
	if len(full.Metrics) > 0 {
		r.Metrics = make(map[string]float64, len(full.Metrics)+1)
		for name, v := range full.Metrics {
			r.Metrics[name] = v
		}
	}
	r.AddMetric("batch_prefix", 1)
	if len(r.PerSeed) == k {
		r.Took = r.PerSeed[k-1]
	} else {
		r.Took = full.Took
	}
	return r
}

// runEstimate executes a planned estimate query: one member per seed
// set, all Monte-Carlo members sharing a single diffusion model.
func runEstimate(ctx context.Context, g *Graph, q Query, ans *Answer) error {
	o := q.Options
	model, err := NewModel(g, o.Model) // validated by the planner
	if err != nil {
		return err
	}
	for i, seeds := range q.SeedSets {
		var est Estimate
		var memberErr error
		served := false
		if ans.Plan.Steps[i].Backend == BackendSketch {
			if oe, err := o.Sketch.EstimateOpinion(seeds); err == nil {
				est = Estimate{
					Runs:           oe.Sets,
					Spread:         oe.Spread,
					OpinionSpread:  oe.Opinion,
					PositiveSpread: oe.Positive,
					NegativeSpread: oe.Negative,
				}
				served = true
			}
			// An index that cannot answer (defensively: unweighted kind)
			// falls through to Monte Carlo.
		}
		if !served {
			est = diffusion.MonteCarlo(model, seeds, diffusion.MCOptions{
				Runs: o.MCRuns, Seed: o.Seed, Workers: o.Workers, Ctx: ctx,
			})
			// A cancellation landing after the final run was dispatched did
			// not truncate anything — that estimate is complete.
			if cerr := ctx.Err(); cerr != nil && est.Runs < o.MCRuns {
				memberErr = fmt.Errorf("holisticim: estimate interrupted after %d of %d runs: %w",
					est.Runs, o.MCRuns, cerr)
			}
		}
		m := Member{Seeds: seeds, Estimate: &est}
		ans.Members = append(ans.Members, m)
		if q.OnMember != nil {
			q.OnMember(i, m)
		}
		if memberErr != nil {
			return memberErr
		}
	}
	return nil
}
