package holisticim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSelectSeedsContextCancellationAllAlgorithms is the facade-level
// conformance pass: for every algorithm, cancelling mid-selection (from
// the first progress report) yields a prompt return with a partial
// Result and an error wrapping context.Canceled. Run with -race in CI.
func TestSelectSeedsContextCancellationAllAlgorithms(t *testing.T) {
	g := testGraph()
	opts := Options{MCRuns: 60, Seed: 5, TIMThetaCap: 20000, Model: ModelIC}
	algs := []Algorithm{
		AlgEaSyIM, AlgOSIM, AlgGreedy, AlgCELFPP, AlgModifiedGreedy, AlgStaticGreedy,
		AlgTIMPlus, AlgIMM, AlgIRIE, AlgDegree, AlgDegreeDiscount, AlgPageRank,
	}
	for _, alg := range algs {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			o := opts
			if alg == AlgOSIM || alg == AlgModifiedGreedy {
				o.Model = "" // pick the opinion-aware default
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			o.Progress = func(seedIdx int, seed NodeID, elapsed time.Duration) {
				if seedIdx == 0 {
					cancel()
				}
			}
			res, err := SelectSeedsContext(ctx, g, 4, alg, o)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want wrapped context.Canceled", err)
			}
			if !res.Partial {
				t.Fatal("cancelled selection not marked Partial")
			}
			if len(res.Seeds) == 0 || len(res.Seeds) >= 4 {
				t.Fatalf("partial result has %d seeds, want a non-empty strict prefix of 4", len(res.Seeds))
			}
		})
	}
}

// TestSimpathCancellation covers the LT-only algorithm the all-algorithms
// sweep skips (SIMPATH needs the LT model).
func TestSimpathCancellation(t *testing.T) {
	g := testGraph()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := Options{Model: ModelLT, Seed: 5, Progress: func(seedIdx int, seed NodeID, elapsed time.Duration) {
		if seedIdx == 0 {
			cancel()
		}
	}}
	res, err := SelectSeedsContext(ctx, g, 4, AlgSIMPATH, o)
	if !errors.Is(err, context.Canceled) || !res.Partial {
		t.Fatalf("err=%v partial=%v", err, res.Partial)
	}
}

// TestSelectSeedsDeadlineOption proves Options.Deadline alone — with a
// plain background context — bounds the selection wall-clock.
func TestSelectSeedsDeadlineOption(t *testing.T) {
	g := testGraph()
	res, err := SelectSeedsContext(context.Background(), g, 50, AlgGreedy,
		Options{MCRuns: 2000, Seed: 3, Deadline: 25 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if !res.Partial {
		t.Fatal("deadline-expired selection not marked Partial")
	}
	if len(res.Seeds) >= 50 {
		t.Fatalf("deadline-expired selection still returned %d seeds", len(res.Seeds))
	}
}

// TestSelectSeedsProgressOption watches the per-seed callback fire for a
// full, uncancelled run and checks the reported stream is consistent.
func TestSelectSeedsProgressOption(t *testing.T) {
	g := testGraph()
	var idxs []int
	var seeds []NodeID
	var lastElapsed time.Duration
	res, err := SelectSeedsContext(context.Background(), g, 5, AlgDegree, Options{
		Progress: func(seedIdx int, seed NodeID, elapsed time.Duration) {
			idxs = append(idxs, seedIdx)
			seeds = append(seeds, seed)
			if elapsed < lastElapsed {
				t.Errorf("elapsed went backwards: %v after %v", elapsed, lastElapsed)
			}
			lastElapsed = elapsed
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) != 5 {
		t.Fatalf("progress fired %d times, want 5", len(idxs))
	}
	for i, idx := range idxs {
		if idx != i {
			t.Fatalf("progress indexes %v, want 0..4 in order", idxs)
		}
		if seeds[i] != res.Seeds[i] {
			t.Fatalf("progress seeds %v != result seeds %v", seeds, res.Seeds)
		}
	}
	// SelectSeeds (the background wrapper) must behave identically.
	res2, err := SelectSeeds(g, 5, AlgDegree, Options{})
	if err != nil || len(res2.Seeds) != 5 || res2.Partial {
		t.Fatalf("SelectSeeds wrapper: res=%+v err=%v", res2, err)
	}
}

// TestFingerprintIgnoresLifecycleKnobs: Progress and Deadline cannot
// change which seeds a completed selection returns, so they must not
// fragment the serving cache.
func TestFingerprintIgnoresLifecycleKnobs(t *testing.T) {
	base := Options{Seed: 7}.Fingerprint(AlgEaSyIM, 10)
	withKnobs := Options{
		Seed:     7,
		Deadline: time.Second,
		Progress: func(int, NodeID, time.Duration) {},
		Workers:  8,
	}.Fingerprint(AlgEaSyIM, 10)
	if base != withKnobs {
		t.Fatalf("fingerprints differ:\n%s\n%s", base, withKnobs)
	}
}

// TestEstimateContextVariants covers the error-returning estimators and
// the panic-free deprecated shims.
func TestEstimateContextVariants(t *testing.T) {
	g := testGraph()
	seeds := []NodeID{0, 1, 2}

	est, err := EstimateSpreadContext(context.Background(), g, seeds, Options{MCRuns: 200, Seed: 4})
	if err != nil || est.Runs != 200 || est.Spread <= 0 {
		t.Fatalf("est=%+v err=%v", est, err)
	}
	if _, err := EstimateSpreadContext(context.Background(), g, seeds, Options{Model: "warp"}); err == nil {
		t.Fatal("unknown model must error, not panic")
	}
	if _, err := EstimateOpinionSpreadContext(context.Background(), nil, seeds, Options{}); err == nil {
		t.Fatal("nil graph must error")
	}

	// Cancellation truncates the run budget and surfaces ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	est, err = EstimateSpreadContext(ctx, g, seeds, Options{MCRuns: 100000, Seed: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled estimate err = %v", err)
	}
	if est.Runs >= 100000 {
		t.Fatalf("cancelled estimate still ran %d simulations", est.Runs)
	}

	// Deprecated shims: same numbers on the happy path, zero value (no
	// panic) on configuration errors.
	old := EstimateSpread(g, seeds, Options{MCRuns: 200, Seed: 4})
	neu, _ := EstimateSpreadContext(context.Background(), g, seeds, Options{MCRuns: 200, Seed: 4})
	if old != neu {
		t.Fatalf("shim diverged: %+v vs %+v", old, neu)
	}
	if got := EstimateSpread(g, seeds, Options{Model: "warp"}); got != (Estimate{}) {
		t.Fatalf("shim with bad model returned %+v, want zero Estimate", got)
	}
	if got := EstimateOpinionSpread(g, seeds, Options{Model: "warp"}); got != (Estimate{}) {
		t.Fatalf("opinion shim with bad model returned %+v, want zero Estimate", got)
	}
}
