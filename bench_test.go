// Benchmark harness: one testing.B target per paper table/figure (the
// mapping lives in DESIGN.md §4). Each benchmark executes the full
// experiment at quick scale; run the cmd/imbench binary (optionally
// without -quick) for the complete reproduction with rendered tables.
//
//	go test -bench=. -benchmem
package holisticim

import (
	"testing"

	"github.com/holisticim/holisticim/internal/experiments"
)

func benchConfig() experiments.Config {
	return experiments.Config{Quick: true, MCRuns: 120, Seed: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg)
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("experiment %q produced no data", id)
		}
	}
}

// --- Section 4.1 (opinion-aware) -----------------------------------------

func BenchmarkFig2_OpinionSpreadModels(b *testing.B) { runExperiment(b, "fig2") }
func BenchmarkFig5a_TwitterTopics(b *testing.B)      { runExperiment(b, "fig5a") }
func BenchmarkFig5b_TwitterRMSE(b *testing.B)        { runExperiment(b, "fig5b") }
func BenchmarkFig5c_TwitterSpread(b *testing.B)      { runExperiment(b, "fig5c") }
func BenchmarkFig5d_Churn(b *testing.B)              { runExperiment(b, "fig5d") }
func BenchmarkFig5e_LambdaAblation(b *testing.B)     { runExperiment(b, "fig5e") }
func BenchmarkFig5f_OSIMvsGreedy(b *testing.B)       { runExperiment(b, "fig5f") }
func BenchmarkFig5g_OSIMTime(b *testing.B)           { runExperiment(b, "fig5g") }
func BenchmarkFig5h_OSIMMemory(b *testing.B)         { runExperiment(b, "fig5h") }

// --- Section 4.2 (opinion-oblivious) --------------------------------------

func BenchmarkFig6ac_EaSyIMLSweep(b *testing.B) {
	for _, id := range []string{"fig6a", "fig6b", "fig6c"} {
		id := id
		b.Run(id, func(b *testing.B) { runExperiment(b, id) })
	}
}
func BenchmarkFig6de_SpreadComparison(b *testing.B) {
	for _, id := range []string{"fig6d", "fig6e"} {
		id := id
		b.Run(id, func(b *testing.B) { runExperiment(b, id) })
	}
}
func BenchmarkFig6fh_TimeComparison(b *testing.B) {
	for _, id := range []string{"fig6f", "fig6g", "fig6h"} {
		id := id
		b.Run(id, func(b *testing.B) { runExperiment(b, id) })
	}
}
func BenchmarkFig6i_MemoryGrowth(b *testing.B)   { runExperiment(b, "fig6i") }
func BenchmarkFig6j_MemoryOverhead(b *testing.B) { runExperiment(b, "fig6j") }
func BenchmarkTable3_EaSyIMvsTIM(b *testing.B)   { runExperiment(b, "tab3") }
func BenchmarkTable4_EaSyIMvsCELF(b *testing.B)  { runExperiment(b, "tab4") }

// --- Appendix B ------------------------------------------------------------

func BenchmarkFig7a_LambdaLarge(b *testing.B)   { runExperiment(b, "fig7a") }
func BenchmarkFig7b_OSIMUnderOC(b *testing.B)   { runExperiment(b, "fig7b") }
func BenchmarkFig7c_OSIMLargeOI(b *testing.B)   { runExperiment(b, "fig7c") }
func BenchmarkFig7d_LTSpread(b *testing.B)      { runExperiment(b, "fig7d") }
func BenchmarkFig7e_WCSpread(b *testing.B)      { runExperiment(b, "fig7e") }
func BenchmarkFig7f_OCTime(b *testing.B)        { runExperiment(b, "fig7f") }
func BenchmarkFig7g_OSIMTimeLarge(b *testing.B) { runExperiment(b, "fig7g") }
func BenchmarkFig7h_IRIETime(b *testing.B)      { runExperiment(b, "fig7h") }
func BenchmarkFig7i_SimpathTime(b *testing.B)   { runExperiment(b, "fig7i") }
func BenchmarkFig7j_LargeMemory(b *testing.B)   { runExperiment(b, "fig7j") }

// --- Ablations (DESIGN.md §5) ----------------------------------------------

func BenchmarkAblationActivationPolicy(b *testing.B) { runExperiment(b, "ablation-policy") }
func BenchmarkAblationOpinionObliviousSeeds(b *testing.B) {
	runExperiment(b, "ablation-oblivious-seeds")
}
