package holisticim

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

func queryTestGraph(n int32) *Graph {
	g := GenerateBA(n, 3, 1)
	g.SetUniformProb(0.1)
	AssignOpinions(g, OpinionNormal, 2)
	AssignInteractions(g, 3)
	return g
}

// assertPrefixes checks the memoized-greedy batch invariant: every
// smaller-k member's seeds are exactly the first k seeds of every larger
// member.
func assertPrefixes(t *testing.T, members []Member) {
	t.Helper()
	largest := members[0]
	for _, m := range members {
		if m.Result == nil {
			t.Fatalf("member k=%d has no result", m.K)
		}
		if len(m.Result.Seeds) != m.K {
			t.Fatalf("member k=%d selected %d seeds", m.K, len(m.Result.Seeds))
		}
		if m.K > largest.K {
			largest = m
		}
	}
	for _, m := range members {
		for i, s := range m.Result.Seeds {
			if s != largest.Result.Seeds[i] {
				t.Fatalf("member k=%d seed %d = %d, want prefix of k=%d (%d)",
					m.K, i, s, largest.K, largest.Result.Seeds[i])
			}
		}
	}
}

// TestRunBatchPrefixInvariant: Run with Ks [5, 10, 25] returns seed
// lists where each smaller-k result is a prefix of the larger, for every
// backend family — the memoized-greedy invariant the batch execution
// depends on. Ks arrive unsorted to exercise member alignment.
func TestRunBatchPrefixInvariant(t *testing.T) {
	g := queryTestGraph(400)
	cases := []struct {
		alg  Algorithm
		opts Options
		want Backend
	}{
		{AlgDegree, Options{}, BackendHeuristic},
		{AlgEaSyIM, Options{}, BackendScore},
		{AlgGreedy, Options{MCRuns: 60}, BackendMC},
		{AlgIMM, Options{Epsilon: 0.3}, BackendRIS},
	}
	for _, tc := range cases {
		t.Run(string(tc.alg), func(t *testing.T) {
			ans, err := Run(context.Background(), g, Query{
				Algorithm: tc.alg, Ks: []int{10, 5, 25}, Options: tc.opts,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(ans.Members) != 3 {
				t.Fatalf("got %d members", len(ans.Members))
			}
			for i, want := range []int{10, 5, 25} {
				if ans.Members[i].K != want {
					t.Fatalf("member %d has k=%d, want %d (request order)", i, ans.Members[i].K, want)
				}
			}
			for _, st := range ans.Plan.Steps {
				if st.Backend != tc.want {
					t.Fatalf("planned backend %q, want %q", st.Backend, tc.want)
				}
			}
			assertPrefixes(t, ans.Members)
		})
	}
}

// TestRunBatchSharedSketch: a batch against a prebuilt sketch is served
// entirely from the index (plan is sketch-only, prefix invariant holds)
// and is measurably cheaper than the same three selections run cold.
func TestRunBatchSharedSketch(t *testing.T) {
	g := queryTestGraph(2000)
	sk, err := BuildSketch(context.Background(), g, SketchOptions{Epsilon: 0.3, Seed: 5, BuildK: 25})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Epsilon: 0.3, Seed: 5, Sketch: sk}

	start := time.Now()
	ans, err := Run(context.Background(), g, Query{Algorithm: AlgIMM, Ks: []int{5, 10, 25}, Options: opts})
	batch := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Plan.SketchOnly() {
		t.Fatalf("batch with matching sketch not sketch-only: %v", ans.Plan.Explain())
	}
	assertPrefixes(t, ans.Members)

	cold := Options{Epsilon: 0.3, Seed: 5}
	start = time.Now()
	for _, k := range []int{5, 10, 25} {
		if _, err := SelectSeeds(g, k, AlgIMM, cold); err != nil {
			t.Fatal(err)
		}
	}
	coldTotal := time.Since(start)
	t.Logf("sketch batch: %v, three cold IMM selects: %v", batch, coldTotal)
	if batch >= coldTotal {
		t.Fatalf("batch over a shared sketch (%v) not cheaper than three cold selects (%v)", batch, coldTotal)
	}
}

// TestRunBatchColdRIS: without a sketch, a RIS batch shares one RR
// collection (the plan says so) and keeps the prefix invariant.
func TestRunBatchColdRIS(t *testing.T) {
	g := queryTestGraph(400)
	ans, err := Run(context.Background(), g, Query{
		Algorithm: AlgTIMPlus, Ks: []int{4, 8}, Options: Options{Epsilon: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := ans.Plan.Steps[0]
	if st.Backend != BackendRIS || st.Shared == "" {
		t.Fatalf("cold RIS batch plan: %+v", st)
	}
	assertPrefixes(t, ans.Members)
}

// TestRunEstimateBatch: estimate members align with the requested seed
// sets, share one model, and match the single-set entrypoints exactly
// (the estimator is deterministic per seed).
func TestRunEstimateBatch(t *testing.T) {
	g := queryTestGraph(400)
	sets := [][]NodeID{{0, 1}, {2, 3, 4}, {5}}
	opts := Options{MCRuns: 100, Seed: 4}
	ans, err := Run(context.Background(), g, Query{Task: TaskEstimate, SeedSets: sets, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Members) != 3 {
		t.Fatalf("got %d members", len(ans.Members))
	}
	if st := ans.Plan.Steps[0]; st.Backend != BackendMC || st.Shared == "" {
		t.Fatalf("estimate batch plan: %+v", st)
	}
	for i, set := range sets {
		m := ans.Members[i]
		if m.Estimate == nil || len(m.Seeds) != len(set) {
			t.Fatalf("member %d: %+v", i, m)
		}
		single, err := EstimateSpreadContext(context.Background(), g, set, opts)
		if err != nil {
			t.Fatal(err)
		}
		if m.Estimate.Spread != single.Spread || m.Estimate.Runs != single.Runs {
			t.Fatalf("member %d estimate %+v != single-set estimate %+v", i, m.Estimate, single)
		}
	}
}

// TestRunOnMember: per-member completion streams through OnMember in
// request order with the member's payload attached.
func TestRunOnMember(t *testing.T) {
	g := queryTestGraph(300)
	var got []int
	ans, err := Run(context.Background(), g, Query{
		Algorithm: AlgDegree, Ks: []int{3, 6},
		OnMember: func(member int, m Member) {
			got = append(got, member)
			if m.Result == nil {
				t.Errorf("member %d callback without result", member)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Members) != 2 || len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("OnMember order %v", got)
	}
}

// TestQueryFingerprintHygiene: batch/Query fields that cannot affect a
// completed result — progress sinks, member callbacks, deadlines,
// workers and the attached sketch — are excluded from Fingerprint, while
// every result-bearing field separates keys.
func TestQueryFingerprintHygiene(t *testing.T) {
	base := Query{Algorithm: AlgIMM, Ks: []int{5, 10}, Options: Options{Epsilon: 0.3, Seed: 5}}
	noisy := base
	noisy.Options.Workers = 8
	noisy.Options.Deadline = time.Second
	noisy.Options.Progress = func(int, NodeID, time.Duration) {}
	noisy.Options.Sketch = &Sketch{}
	noisy.OnMember = func(int, Member) {}
	if base.Fingerprint() != noisy.Fingerprint() {
		t.Fatalf("lifecycle fields leaked into the fingerprint:\n%q\n%q",
			base.Fingerprint(), noisy.Fingerprint())
	}

	// A single-k select query fingerprints identically to the v1
	// Options.Fingerprint, so both serving surfaces share cache entries.
	single := Query{Algorithm: AlgEaSyIM, K: 10, Options: Options{Seed: 7}}
	if got, want := single.Fingerprint(), (Options{Seed: 7}).Fingerprint(AlgEaSyIM, 10); got != want {
		t.Fatalf("single-k query fingerprint %q != Options fingerprint %q", got, want)
	}

	variants := []Query{
		{Algorithm: AlgIMM, Ks: []int{5, 10}, Options: Options{Epsilon: 0.3, Seed: 6}},
		{Algorithm: AlgIMM, Ks: []int{5, 11}, Options: Options{Epsilon: 0.3, Seed: 5}},
		{Algorithm: AlgIMM, Ks: []int{5}, Options: Options{Epsilon: 0.3, Seed: 5}},
		{Algorithm: AlgTIMPlus, Ks: []int{5, 10}, Options: Options{Epsilon: 0.3, Seed: 5}},
		{Task: TaskEstimate, SeedSets: [][]NodeID{{1, 2}}, Options: Options{Seed: 5}},
		{Task: TaskEstimate, SeedSets: [][]NodeID{{1, 3}}, Options: Options{Seed: 5}},
		{Task: TaskEstimate, Objective: ObjectiveOpinion, SeedSets: [][]NodeID{{1, 2}}, Options: Options{Seed: 5}},
		{Task: TaskEstimate, SeedSets: [][]NodeID{{1, 2}}, Options: Options{Seed: 5, Lambda: 2}},
	}
	seen := map[string]int{base.Fingerprint(): -1}
	for i, v := range variants {
		fp := v.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("variant %d collides with %d: %q", i, prev, fp)
		}
		seen[fp] = i
	}
}

// TestPlanExplain: the planner names a backend and a reason for every
// member, and routes each algorithm family where it belongs.
func TestPlanExplain(t *testing.T) {
	g := queryTestGraph(300)
	sk, err := BuildSketch(context.Background(), g, SketchOptions{Epsilon: 0.3, Seed: 5, BuildK: 10})
	if err != nil {
		t.Fatal(err)
	}

	plan, err := PlanQuery(g, Query{Algorithm: AlgIMM, K: 5, Options: Options{Epsilon: 0.3, Seed: 5, Sketch: sk}})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.SketchOnly() {
		t.Fatalf("matching sketch not planned: %v", plan.Explain())
	}
	// A θ cap opts out of the sketch.
	plan, err = PlanQuery(g, Query{Algorithm: AlgIMM, K: 5, Options: Options{Epsilon: 0.3, Seed: 5, Sketch: sk, TIMThetaCap: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SketchOnly() || plan.Steps[0].Backend != BackendRIS {
		t.Fatalf("θ-capped plan: %v", plan.Explain())
	}

	for _, ex := range plan.Explain() {
		if ex == "" {
			t.Fatal("empty explain line")
		}
	}

	// A sketch left behind by a mutation is never silently served: the
	// planner re-routes to the cold backend and says why.
	lv := WrapLive(g, LiveOptions{})
	res, err := lv.Apply(context.Background(), []EdgeOp{{Op: OpRemoveEdge, From: 0, To: g.OutNeighbors(0)[0]}}, ApplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	newG := lv.Graph()
	plan, err = PlanQuery(newG, Query{Algorithm: AlgIMM, K: 5, Options: Options{Epsilon: 0.3, Seed: 5, Sketch: sk}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SketchOnly() || plan.Steps[0].Backend != BackendRIS {
		t.Fatalf("stale sketch still planned: %v", plan.Explain())
	}
	stale := false
	for _, ex := range plan.Explain() {
		if strings.Contains(ex, "awaiting repair") {
			stale = true
		}
	}
	if !stale {
		t.Fatalf("stale-sketch plan does not say why: %v", plan.Explain())
	}
	// After repair the sketch matches the new snapshot and serves again.
	if _, err := sk.Repair(context.Background(), newG, res.Dirty, res.Version, SketchRepairOptions{}); err != nil {
		t.Fatal(err)
	}
	plan, err = PlanQuery(newG, Query{Algorithm: AlgIMM, K: 5, Options: Options{Epsilon: 0.3, Seed: 5, Sketch: sk}})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.SketchOnly() {
		t.Fatalf("repaired sketch not planned: %v", plan.Explain())
	}

	// Validation errors surface from the planner.
	if _, err := PlanQuery(g, Query{Algorithm: "quantum", K: 5}); err == nil {
		t.Fatal("unknown algorithm not rejected")
	}
	if _, err := PlanQuery(g, Query{Algorithm: AlgDegree, K: 0}); err == nil {
		t.Fatal("zero k not rejected")
	}
	if _, err := PlanQuery(g, Query{Algorithm: AlgDegree, Ks: []int{2, 9000}}); err == nil {
		t.Fatal("oversized batch member not rejected")
	}
	if _, err := PlanQuery(g, Query{Task: TaskEstimate}); err == nil {
		t.Fatal("estimate without seed sets not rejected")
	}
	if _, err := PlanQuery(g, Query{Task: "transmogrify", K: 1, Algorithm: AlgDegree}); err == nil {
		t.Fatal("unknown task not rejected")
	}
	if _, err := PlanQuery(nil, Query{Algorithm: AlgDegree, K: 1}); err == nil {
		t.Fatal("nil graph not rejected")
	}
}

// TestRunSelectMatchesEntrypoint: the rebuilt SelectSeedsContext wrapper
// returns exactly what a direct one-member Run does.
func TestRunSelectMatchesEntrypoint(t *testing.T) {
	g := queryTestGraph(300)
	for _, alg := range []Algorithm{AlgDegree, AlgEaSyIM} {
		direct, err := SelectSeeds(g, 5, alg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ans, err := Run(context.Background(), g, Query{Algorithm: alg, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(direct.Seeds) != fmt.Sprint(ans.Members[0].Result.Seeds) {
			t.Fatalf("%s: wrapper seeds %v != Run seeds %v", alg, direct.Seeds, ans.Members[0].Result.Seeds)
		}
	}
}
