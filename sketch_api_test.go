package holisticim

import (
	"bytes"
	"context"
	"testing"
)

func sketchTestGraph() *Graph {
	g := GenerateBA(2000, 3, 1)
	g.SetUniformProb(0.1)
	return g
}

func TestOptionsSketchFastPath(t *testing.T) {
	g := sketchTestGraph()
	sk, err := BuildSketch(context.Background(), g, SketchOptions{Epsilon: 0.3, Seed: 5, BuildK: 20})
	if err != nil {
		t.Fatal(err)
	}

	// With a matching sketch attached, IMM selections are served from it.
	res, err := SelectSeeds(g, 10, AlgIMM, Options{Epsilon: 0.3, Seed: 5, Sketch: sk})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "RR-sketch" {
		t.Fatalf("algorithm %q, want RR-sketch", res.Algorithm)
	}
	direct, err := sk.Select(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Seeds {
		if res.Seeds[i] != direct.Seeds[i] {
			t.Fatalf("facade seed %d differs from direct sketch select", i)
		}
	}
	// TIM+ rides the same index.
	res, err = SelectSeeds(g, 10, AlgTIMPlus, Options{Epsilon: 0.3, Seed: 5, Sketch: sk})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "RR-sketch" {
		t.Fatalf("TIM+ with sketch: algorithm %q", res.Algorithm)
	}

	// A θ cap opts out of the fast path.
	res, err = SelectSeeds(g, 5, AlgIMM, Options{Epsilon: 0.3, Seed: 5, Sketch: sk, TIMThetaCap: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "IMM" {
		t.Fatalf("capped run should bypass the sketch, got %q", res.Algorithm)
	}

	// A different graph never matches.
	other := sketchTestGraph()
	res, err = SelectSeeds(other, 5, AlgIMM, Options{Epsilon: 0.3, Seed: 5, Sketch: sk, TIMThetaCap: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "IMM" {
		t.Fatalf("foreign graph should bypass the sketch, got %q", res.Algorithm)
	}
	// An LT-family model needs LT semantics the IC sketch lacks.
	res, err = SelectSeeds(g, 5, AlgIMM, Options{Model: ModelLT, Epsilon: 0.3, Seed: 5, Sketch: sk, TIMThetaCap: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "IMM" {
		t.Fatalf("LT request should bypass an IC sketch, got %q", res.Algorithm)
	}
}

func TestSketchPersistenceFacade(t *testing.T) {
	g := sketchTestGraph()
	sk, err := BuildSketch(context.Background(), g, SketchOptions{Epsilon: 0.35, Seed: 9, BuildK: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSketch(&buf, sk); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	h, err := ReadSketchHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if h.Epsilon != 0.35 || h.Seed != 9 || h.Nodes != g.NumNodes() {
		t.Fatalf("header mismatch: %+v", h)
	}

	loaded, err := ReadSketch(bytes.NewReader(raw), g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sk.Select(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Select(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Seeds {
		if got.Seeds[i] != want.Seeds[i] {
			t.Fatalf("loaded sketch seed %d differs", i)
		}
	}
}

// An "oc" sketch serves both the weighted selection (via AlgTIMPlus/
// AlgIMM with Model "oc") and the opinion-spread estimate without Monte
// Carlo.
func TestOpinionSketchFastPath(t *testing.T) {
	g := sketchTestGraph()
	AssignOpinions(g, OpinionNormal, 2)
	sk, err := BuildSketch(context.Background(), g, SketchOptions{Model: ModelOC, Epsilon: 0.3, Seed: 5, BuildK: 20})
	if err != nil {
		t.Fatal(err)
	}
	if sk.Kind().String() != "OC" {
		t.Fatalf("sketch kind %v, want OC", sk.Kind())
	}

	// Weighted selection rides the TIM+/IMM entry points.
	res, err := SelectSeeds(g, 10, AlgIMM, Options{Model: ModelOC, Epsilon: 0.3, Seed: 5, Sketch: sk})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "RR-sketch" {
		t.Fatalf("algorithm %q, want RR-sketch", res.Algorithm)
	}
	if _, ok := res.Metrics["weighted_coverage"]; !ok {
		t.Fatal("weighted selection did not report weighted_coverage")
	}

	// The opinion estimate is served from the sketch: it must equal the
	// index's own estimator, not a Monte-Carlo average.
	opts := Options{Model: ModelOC, Epsilon: 0.3, Seed: 5, Sketch: sk}
	if !SketchServedEstimate(g, opts) {
		t.Fatal("matching oc sketch not recognized for the estimate fast path")
	}
	est, err := EstimateOpinionSpreadContext(context.Background(), g, res.Seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sk.EstimateOpinion(res.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if est.OpinionSpread != direct.Opinion || est.Spread != direct.Spread ||
		est.PositiveSpread != direct.Positive || est.NegativeSpread != direct.Negative {
		t.Fatalf("facade estimate %+v differs from sketch estimator %+v", est, direct)
	}
	if est.Runs != direct.Sets {
		t.Fatalf("sketch-served estimate reports Runs=%d, want RR-set count %d", est.Runs, direct.Sets)
	}

	// Non-OC models never take the opinion fast path, nor do foreign
	// graphs (few MC runs keep the fallback cheap).
	mcOpts := Options{Model: ModelOIIC, MCRuns: 50, Sketch: sk}
	if SketchServedEstimate(g, mcOpts) {
		t.Fatal("oi-ic estimate claimed the oc sketch")
	}
	est, err = EstimateOpinionSpreadContext(context.Background(), g, res.Seeds, mcOpts)
	if err != nil {
		t.Fatal(err)
	}
	if est.Runs != 50 {
		t.Fatalf("fallback estimate ran %d MC runs, want 50", est.Runs)
	}
	other := sketchTestGraph()
	AssignOpinions(other, OpinionUniform, 9)
	if SketchServedEstimate(other, Options{Model: ModelOC, MCRuns: 50, Sketch: sk}) {
		t.Fatal("foreign graph claimed the oc sketch")
	}
}

func TestRRSemantics(t *testing.T) {
	cases := map[ModelKind]string{
		ModelIC: "ic", ModelWC: "ic", ModelOIIC: "ic", "": "ic",
		ModelLT: "lt", ModelOILT: "lt", ModelOC: "oc",
	}
	for k, want := range cases {
		if got := k.RRSemantics(); got != want {
			t.Errorf("%q.RRSemantics() = %q, want %q", k, got, want)
		}
	}
}
